// Package runner supervises a suite of experiment drivers. It exists so
// the multi-minute figure/Monte-Carlo pipeline survives partial failure:
// every figure runs under a per-figure deadline, panics in a driver are
// recovered (with stack) and recorded instead of killing the process,
// transient failures retry with capped exponential backoff, and each
// completed figure is persisted atomically into a checksummed checkpoint
// store so an interrupted suite resumes without recomputing finished work.
// The suite always ends with a per-figure status report; whether anything
// actually failed is the caller's exit-code decision, made from Report.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// Status classifies how a figure ended.
type Status string

const (
	// StatusOK — the driver completed and its outputs are persisted.
	StatusOK Status = "ok"
	// StatusFailed — the driver errored (or panicked) on every attempt.
	StatusFailed Status = "failed"
	// StatusTimedOut — the per-figure deadline or the suite context expired.
	StatusTimedOut Status = "timed-out"
	// StatusCached — a valid checkpoint satisfied the figure under -resume.
	StatusCached Status = "skipped-cached"
	// StatusSkipped — the suite aborted (KeepGoing off) before this figure.
	StatusSkipped Status = "skipped"
)

// PanicError is a recovered driver panic, annotated with the stack at the
// panic site. Panics are deterministic bugs, not transient conditions, so
// the supervisor does not retry them.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// FigureStatus is one row of the end-of-suite report.
type FigureStatus struct {
	ID       string
	Title    string
	Status   Status
	Attempts int
	Duration time.Duration
	// Err is the one-line failure reason (empty on success).
	Err string
	// SpreadUnavailable records that the figure itself completed but the
	// extra-seed spread annotation could not be computed.
	SpreadUnavailable bool
}

// Report is the outcome of a suite run.
type Report struct {
	Figures []FigureStatus
	// Metrics collects the headline numbers of every ok or cached figure,
	// keyed by figure ID — the payload of results/metrics.json.
	Metrics map[string]map[string]float64
}

// Failed counts figures that actually failed or timed out — the figures
// that make the suite's exit code nonzero.
func (r *Report) Failed() int {
	n := 0
	for _, f := range r.Figures {
		if f.Status == StatusFailed || f.Status == StatusTimedOut {
			n++
		}
	}
	return n
}

// Render formats the per-figure status table and a summary line.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-15s %8s %10s  %s\n", "figure", "status", "attempts", "duration", "note")
	counts := map[Status]int{}
	spreadMissing := 0
	for _, f := range r.Figures {
		counts[f.Status]++
		note := f.Err
		if f.SpreadUnavailable {
			spreadMissing++
			if note != "" {
				note += "; "
			}
			note += "seed spread unavailable"
		}
		fmt.Fprintf(&b, "%-20s %-15s %8d %10s  %s\n",
			f.ID, f.Status, f.Attempts, f.Duration.Round(time.Millisecond), note)
	}
	fmt.Fprintf(&b, "suite: %d ok, %d failed, %d timed-out, %d skipped-cached, %d skipped",
		counts[StatusOK], counts[StatusFailed], counts[StatusTimedOut],
		counts[StatusCached], counts[StatusSkipped])
	if spreadMissing > 0 {
		fmt.Fprintf(&b, "; %d seed spread(s) unavailable", spreadMissing)
	}
	b.WriteByte('\n')
	return b.String()
}

// Options configures a suite run.
type Options struct {
	// Params is the workload every figure runs under.
	Params experiments.Params
	// Seeds > 1 additionally annotates each metric with its min/max across
	// that many seeds (the -seeds flag).
	Seeds int
	// OutDir receives the figure CSV/SVG outputs. Defaults to "results".
	OutDir string
	// CheckpointDir holds the checkpoint store. Defaults to
	// <OutDir>/checkpoints.
	CheckpointDir string
	// FigTimeout bounds each driver attempt (0 = no per-figure deadline).
	// Deadlines propagate through the drivers' context checks; a driver
	// that ignores its context is not preempted.
	FigTimeout time.Duration
	// Retries is how many times a transiently failing figure is retried
	// after its first attempt. Context errors and panics never retry.
	Retries int
	// RetryBackoff is the first retry delay, doubled per retry up to
	// MaxBackoff. Defaults: 250ms, capped at 5s.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// KeepGoing continues past failed figures; when false the first
	// failure marks the rest of the suite skipped.
	KeepGoing bool
	// Resume serves figures from valid checkpoints instead of recomputing.
	Resume bool
	// Log receives progress and failure detail (nil = discard).
	Log io.Writer
	// OnResult, if set, observes every completed figure — freshly computed
	// (cached=false) or served from a checkpoint (cached=true) — in suite
	// order.
	OnResult func(res experiments.Result, cached bool)
	// Registry, when non-nil, receives per-figure wall-time and attempt
	// gauges plus a status-classified completion counter after every
	// figure settles.
	Registry *obs.Registry
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.OutDir == "" {
		opts.OutDir = "results"
	}
	if opts.CheckpointDir == "" {
		opts.CheckpointDir = filepath.Join(opts.OutDir, "checkpoints")
	}
	if opts.Seeds < 1 {
		opts.Seeds = 1
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 250 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	return opts
}

// Run executes the suite under ctx and returns the per-figure report. The
// returned error covers infrastructure only (an unusable output or
// checkpoint directory); figure failures live in the report so one bad
// driver never takes down the rest of the suite.
func Run(ctx context.Context, runners []experiments.Runner, o Options) (*Report, error) {
	opts := o.withDefaults()
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating output directory: %w", err)
	}
	store, err := OpenStore(opts.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("runner: opening checkpoint store: %w", err)
	}
	rep := &Report{Metrics: map[string]map[string]float64{}}
	aborted := false
	for _, r := range runners {
		fs := FigureStatus{ID: r.ID, Title: r.Title}
		if aborted {
			fs.Status = StatusSkipped
			opts.observeFigure(fs)
			rep.Figures = append(rep.Figures, fs)
			continue
		}
		key := ParamsKey(r.ID, opts.Params, opts.Seeds)

		if opts.Resume {
			cp, err := store.Load(r.ID, key)
			switch {
			case err == nil:
				// Re-publish the figure's files so OutDir is complete even
				// if the interrupted run died between file writes.
				if err := writeResultFiles(opts, cp.Result); err != nil {
					return nil, err
				}
				fs.Status = StatusCached
				fs.SpreadUnavailable = cp.SpreadUnavailable
				rep.Metrics[cp.Result.ID] = cp.Result.Metrics
				opts.observeFigure(fs)
				rep.Figures = append(rep.Figures, fs)
				if opts.OnResult != nil {
					opts.OnResult(cp.Result, true)
				}
				continue
			case errors.Is(err, ErrNoCheckpoint):
				// Nothing saved yet; compute below.
			default:
				fmt.Fprintf(opts.Log, "runner: %s: checkpoint unusable (%v); recomputing\n", r.ID, err)
			}
		}

		start := time.Now()
		res, attempts, err := runWithRetries(ctx, r, opts)
		fs.Attempts = attempts
		fs.Duration = time.Since(start).Round(time.Millisecond)
		if err == nil && opts.Seeds > 1 {
			if serr := spreadMetrics(ctx, r, opts, &res); serr != nil {
				if isCtxErr(serr) {
					// Cancelled mid-spread: treat the figure as interrupted
					// rather than checkpointing a spread-less result that a
					// resumed run would serve forever.
					err = serr
				} else {
					fs.SpreadUnavailable = true
					fmt.Fprintf(opts.Log, "runner: %s: seed spread unavailable: %v\n", r.ID, serr)
				}
			}
		}
		if err != nil {
			if isCtxErr(err) {
				fs.Status = StatusTimedOut
			} else {
				fs.Status = StatusFailed
				if !opts.KeepGoing {
					aborted = true
				}
			}
			fs.Err = firstLine(err.Error())
			fmt.Fprintf(opts.Log, "runner: %s: %v\n", r.ID, err)
			opts.observeFigure(fs)
			rep.Figures = append(rep.Figures, fs)
			continue
		}

		if err := writeResultFiles(opts, res); err != nil {
			return nil, err
		}
		if err := store.Save(r.ID, key, Checkpoint{Result: res, SpreadUnavailable: fs.SpreadUnavailable}); err != nil {
			return nil, err
		}
		fs.Status = StatusOK
		rep.Metrics[res.ID] = res.Metrics
		opts.observeFigure(fs)
		rep.Figures = append(rep.Figures, fs)
		if opts.OnResult != nil {
			opts.OnResult(res, false)
		}
	}
	return rep, nil
}

// runWithRetries drives one figure to success, a terminal failure, or
// cancellation. Ordinary errors retry with capped exponential backoff;
// panics (deterministic bugs) and context errors do not.
func runWithRetries(ctx context.Context, r experiments.Runner, opts Options) (experiments.Result, int, error) {
	backoff := opts.RetryBackoff
	attempts := 0
	for {
		attempts++
		res, err := runOnce(ctx, r, opts.Params, opts.FigTimeout)
		if err == nil {
			return res, attempts, nil
		}
		var pe *PanicError
		if errors.As(err, &pe) || isCtxErr(err) || attempts > opts.Retries {
			return experiments.Result{}, attempts, err
		}
		fmt.Fprintf(opts.Log, "runner: %s: attempt %d failed (%s); retrying in %s\n",
			r.ID, attempts, firstLine(err.Error()), backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return experiments.Result{}, attempts, ctx.Err()
		}
		if backoff *= 2; backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
	}
}

// runOnce executes a single driver attempt under the per-figure deadline,
// converting a panic anywhere in the driver into a *PanicError.
func runOnce(ctx context.Context, r experiments.Runner, p experiments.Params, timeout time.Duration) (res experiments.Result, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return r.Run(ctx, p)
}

// spreadMetrics re-runs a figure across extra seeds and annotates each
// metric with its min/max across seeds, so seed sensitivity is visible at
// a glance in metrics.json. A failure leaves the base result untouched.
func spreadMetrics(ctx context.Context, r experiments.Runner, opts Options, res *experiments.Result) error {
	mins := map[string]float64{}
	maxs := map[string]float64{}
	for k, v := range res.Metrics {
		mins[k], maxs[k] = v, v
	}
	for s := 1; s < opts.Seeds; s++ {
		p := opts.Params
		p.Seed = opts.Params.Seed + int64(s)
		other, err := runOnce(ctx, r, p, opts.FigTimeout)
		if err != nil {
			return fmt.Errorf("seed %d: %w", p.Seed, err)
		}
		for k, v := range other.Metrics {
			if v < mins[k] {
				mins[k] = v
			}
			if v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	for k := range mins {
		res.Metrics[k+"_seed_min"] = mins[k]
		res.Metrics[k+"_seed_max"] = maxs[k]
	}
	return nil
}

// writeResultFiles atomically publishes a figure's output files into
// OutDir, in deterministic name order.
func writeResultFiles(opts Options, res experiments.Result) error {
	names := make([]string, 0, len(res.Files))
	for name := range res.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(opts.OutDir, name)
		if err := atomicio.WriteFile(path, []byte(res.Files[name]), 0o644); err != nil {
			return fmt.Errorf("runner: writing %s: %w", path, err)
		}
		fmt.Fprintf(opts.Log, "  wrote %s\n", path)
	}
	return nil
}

// observeFigure publishes one settled figure row to the registry: how long
// the last run took, how many driver attempts it needed, and a counter of
// rows by final status. Gauges (not histograms) because each figure runs
// once per suite — the interesting comparison is across figures, not
// across runs.
func (o Options) observeFigure(fs FigureStatus) {
	if o.Registry == nil {
		return
	}
	l := obs.Labels{"figure": fs.ID}
	o.Registry.Gauge("sicfig_figure_seconds", "wall time of the figure's most recent run", l).Set(fs.Duration.Seconds())
	o.Registry.Gauge("sicfig_figure_attempts", "driver attempts of the figure's most recent run", l).Set(float64(fs.Attempts))
	o.Registry.Counter("sicfig_figures_total", "settled figure rows by final status", obs.Labels{"status": string(fs.Status)}).Inc()
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
