package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Group is a fixed set of named monotonic event counters registered as one
// family, each event a labelled series: <name>{<labelKey>="<event>"}. It is
// the registry-backed successor to stats.CounterSet — same fail-fast
// fixed-name contract, same lock-free increments, and a byte-compatible
// String/Snapshot so drain-time dumps that moved onto the registry render
// exactly as before — but every event now also appears in /metrics,
// sharing one snapshot path with the histograms.
type Group struct {
	names    []string // sorted, for deterministic reporting
	counters []*Counter
	index    map[string]int
}

// Group returns the counter group for name, creating and registering one
// series per event. Duplicate or empty event names panic: the name set is
// a compile-time-style contract, not runtime input.
func (r *Registry) Group(name, help, labelKey string, events ...string) *Group {
	sorted := append([]string(nil), events...)
	sort.Strings(sorted)
	g := &Group{
		names:    sorted,
		counters: make([]*Counter, len(sorted)),
		index:    make(map[string]int, len(sorted)),
	}
	for i, n := range sorted {
		if n == "" {
			panic("obs: empty event name in counter group")
		}
		if _, dup := g.index[n]; dup {
			panic(fmt.Sprintf("obs: duplicate event name %q in counter group", n))
		}
		g.index[n] = i
		g.counters[i] = r.Counter(name, help, Labels{labelKey: n})
	}
	return g
}

// Inc adds 1 to the named event counter.
func (g *Group) Inc(name string) { g.Add(name, 1) }

// Add adds delta to the named event counter. Unknown names panic.
func (g *Group) Add(name string, delta int64) {
	i, ok := g.index[name]
	if !ok {
		panic(fmt.Sprintf("obs: unknown event counter %q", name))
	}
	g.counters[i].Add(delta)
}

// Get returns the current value of the named event counter. Unknown names
// panic.
func (g *Group) Get(name string) int64 {
	i, ok := g.index[name]
	if !ok {
		panic(fmt.Sprintf("obs: unknown event counter %q", name))
	}
	return g.counters[i].Get()
}

// Names returns the event names in sorted order.
func (g *Group) Names() []string {
	return append([]string(nil), g.names...)
}

// Snapshot returns a point-in-time copy of every event counter.
func (g *Group) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(g.names))
	for i, n := range g.names {
		out[n] = g.counters[i].Get()
	}
	return out
}

// String renders the counters as "name=value" pairs in sorted name order —
// byte-compatible with stats.CounterSet.String, so the daemon's final
// drain-time dump did not change shape when it moved onto the registry.
func (g *Group) String() string {
	var b strings.Builder
	for i, n := range g.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, g.counters[i].Get())
	}
	return b.String()
}
