package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminMux builds the HTTP admin surface every long-running command
// mounts behind its -admin flag:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        JSON health payload (health(), or {"status":"ok"})
//	/debug/pprof/   the standard net/http/pprof profiling handlers
//
// The pprof handlers are attached to this mux explicitly rather than
// relying on the package's DefaultServeMux side effect, so the admin
// surface is complete even in binaries that never serve the default mux.
func AdminMux(reg *Registry, health func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var payload any = map[string]string{"status": "ok"}
		if health != nil {
			payload = health()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
