// Package obs is the repository's stdlib-only observability layer:
// counters, gauges and fixed-bucket latency histograms behind a registry
// that renders the Prometheus text exposition format. It exists because
// the serving paths (the scheduling daemon, the suite runner, the
// Monte-Carlo pool) previously had no live window — only exit-time counter
// dumps — and every future scaling PR needs a measurement substrate.
//
// The hot path is lock-free: Inc/Add/Set/Observe are one or two
// sync/atomic operations and never contend with a concurrent scrape. The
// registry itself is locked only at registration and render time.
//
// Metric identity is (name, label set). Registration is get-or-create:
// asking twice for the same metric returns the same instance, so
// long-lived components can register lazily without coordinating; asking
// for the same name with a different kind or help string panics, because
// that is a programming error the exposition format cannot represent.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is the label set attached to one metric series. Keys and values
// are rendered sorted by key so series identity is order-independent.
type Labels map[string]string

// metricNameRE is the Prometheus metric/label name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// labelValueReplacer escapes label values per the text exposition format.
var labelValueReplacer = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// render produces the canonical `{k="v",...}` form, or "" for no labels.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		if !metricNameRE.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// The replacer performs the full text-format escape set; %q would
		// escape a second time.
		fmt.Fprintf(&b, `%s="%s"`, k, labelValueReplacer.Replace(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one registered metric instance: it knows how to render itself
// under its family name with its label string.
type series interface {
	writeProm(w io.Writer, name, labels string)
}

// family groups every series sharing one metric name; HELP and TYPE are
// emitted once per family.
type family struct {
	name, help string
	kind       kind
	series     map[string]series // keyed by rendered label string
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is unusable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register is the get-or-create core shared by every constructor. mk is
// called (under the registry lock) only when the series does not exist.
func (r *Registry) register(name, help string, k kind, labels Labels, mk func() series) series {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q registered with two help strings", name))
	}
	key := labels.render()
	if s := f.series[key]; s != nil {
		return s
	}
	s := mk()
	f.series[key] = s
	return s
}

// Counter returns the monotonic counter for (name, labels), creating and
// registering it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.register(name, help, kindCounter, labels, func() series { return &Counter{} })
	return s.(*Counter)
}

// Gauge returns the gauge for (name, labels), creating and registering it
// on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() series { return &Gauge{} })
	return s.(*Gauge)
}

// WritePrometheus renders every registered metric in the text exposition
// format (version 0.0.4), families sorted by name and series sorted by
// label string, so scrapes of an unchanged registry are byte-identical.
// The counters keep moving while the render reads them atomically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type row struct {
		fam    *family
		labels []string
	}
	rows := make([]row, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		ls := make([]string, 0, len(f.series))
		for l := range f.series {
			ls = append(ls, l)
		}
		sort.Strings(ls)
		rows = append(rows, row{fam: f, labels: ls})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&b, "# HELP %s %s\n", row.fam.name, row.fam.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", row.fam.name, row.fam.kind)
		for _, l := range row.labels {
			row.fam.series[l].writeProm(&b, row.fam.name, l)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Render returns the exposition text as a string (test and log helper).
func (r *Registry) Render() string {
	var b strings.Builder
	r.WritePrometheus(&b) // strings.Builder writes cannot fail
	return b.String()
}

// Counter is a monotonic event counter with a lock-free Add.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta. Counters are monotonic; a negative delta panics.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("obs: negative delta on a counter")
	}
	c.v.Add(delta)
}

// Get returns the current value.
func (c *Counter) Get() int64 { return c.v.Load() }

func (c *Counter) writeProm(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Gauge is a float64 value that can go up and down, stored as atomic bits
// so readers never see a torn value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via a CAS loop (safe against concurrent Set/Add).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Get returns the current value.
func (g *Gauge) Get() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeProm(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Get()))
}

// formatFloat renders a float the way the exposition format expects:
// shortest representation, with the IEEE specials spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
