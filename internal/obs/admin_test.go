package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func adminGet(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp, string(body)
}

func TestAdminMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "ups", nil).Add(7)
	srv := httptest.NewServer(AdminMux(reg, nil))
	defer srv.Close()

	resp, body := adminGet(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "up_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, body = adminGet(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var health map[string]string
	if err := json.Unmarshal([]byte(body), &health); err != nil || health["status"] != "ok" {
		t.Errorf("/healthz = %q (err %v), want status ok", body, err)
	}

	// pprof handlers are mounted on this mux, not just the default one.
	resp, _ = adminGet(t, srv, "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
	resp, body = adminGet(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestAdminMuxCustomHealth(t *testing.T) {
	srv := httptest.NewServer(AdminMux(NewRegistry(), func() any {
		return map[string]int64{"clients": 3}
	}))
	defer srv.Close()
	_, body := adminGet(t, srv, "/healthz")
	var got map[string]int64
	if err := json.Unmarshal([]byte(body), &got); err != nil || got["clients"] != 3 {
		t.Errorf("/healthz = %q (err %v), want clients 3", body, err)
	}
}
