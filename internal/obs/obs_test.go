package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestRegistryRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "requests served", Labels{"code": "200"})
	c.Add(3)
	reg.Counter("requests_total", "requests served", Labels{"code": "500"}).Inc()
	g := reg.Gauge("temperature", "current temperature", nil)
	g.Set(36.5)

	got := reg.Render()
	want := strings.Join([]string{
		`# HELP requests_total requests served`,
		`# TYPE requests_total counter`,
		`requests_total{code="200"} 3`,
		`requests_total{code="500"} 1`,
		`# HELP temperature current temperature`,
		`# TYPE temperature gauge`,
		`temperature 36.5`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hits_total", "hits", Labels{"k": "v"})
	b := reg.Counter("hits_total", "hits", Labels{"k": "v"})
	if a != b {
		t.Error("same (name, labels) returned two counter instances")
	}
	if c := reg.Counter("hits_total", "hits", Labels{"k": "other"}); c == a {
		t.Error("different labels returned the same instance")
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(reg *Registry)
	}{
		{"kind mismatch", func(reg *Registry) {
			reg.Counter("m", "h", nil)
			reg.Gauge("m", "h", nil)
		}},
		{"help mismatch", func(reg *Registry) {
			reg.Counter("m", "one", nil)
			reg.Counter("m", "two", nil)
		}},
		{"bad metric name", func(reg *Registry) {
			reg.Counter("bad name", "h", nil)
		}},
		{"bad label name", func(reg *Registry) {
			reg.Counter("m", "h", Labels{"bad label": "v"})
		}},
		{"negative counter delta", func(reg *Registry) {
			reg.Counter("m", "h", nil).Add(-1)
		}},
		{"histogram bounds not increasing", func(reg *Registry) {
			reg.Histogram("m", "h", []float64{1, 1}, nil)
		}},
		{"histogram bounds changed", func(reg *Registry) {
			reg.Histogram("m", "h", []float64{1, 2}, nil)
			reg.Histogram("m", "h", []float64{1, 3}, nil)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.f(NewRegistry())
		})
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h", Labels{"k": "a\"b\\c\nd"}).Inc()
	got := reg.Render()
	if !strings.Contains(got, `m{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("g", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Get(); got != 8000 {
		t.Errorf("concurrent Gauge.Add lost updates: %v, want 8000", got)
	}
}

// TestGroupMatchesCounterSet pins the byte-compatibility contract: a
// registry-backed Group and a stats.CounterSet fed the same operations
// must render identical String() dumps and Snapshot() maps, so the
// daemon's drain-time flush did not change when it moved onto the
// registry.
func TestGroupMatchesCounterSet(t *testing.T) {
	names := []string{"reports_ok", "drop_crc", "ingest_shed", "queries"}
	g := NewRegistry().Group("events_total", "daemon events", "event", names...)
	cs := stats.NewCounterSet(names...)
	ops := []struct {
		name  string
		delta int64
	}{
		{"reports_ok", 5}, {"drop_crc", 2}, {"reports_ok", 1}, {"queries", 40},
	}
	for _, op := range ops {
		g.Add(op.name, op.delta)
		cs.Add(op.name, op.delta)
	}
	if g.String() != cs.String() {
		t.Errorf("String mismatch:\ngroup:      %s\ncounterset: %s", g, cs)
	}
	gs, ss := g.Snapshot(), cs.Snapshot()
	if len(gs) != len(ss) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(gs), len(ss))
	}
	for k, v := range ss {
		if gs[k] != v {
			t.Errorf("snapshot[%s] = %d, want %d", k, gs[k], v)
		}
	}
	if got, want := g.Names(), cs.Names(); len(got) != len(want) {
		t.Fatalf("names differ: %v vs %v", got, want)
	}
	if g.Get("queries") != 40 {
		t.Errorf("Get(queries) = %d, want 40", g.Get("queries"))
	}
}

func TestGroupPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty event":  func() { NewRegistry().Group("m", "h", "event", "a", "") },
		"dup event":    func() { NewRegistry().Group("m", "h", "event", "a", "a") },
		"unknown inc":  func() { NewRegistry().Group("m", "h", "event", "a").Inc("b") },
		"unknown get":  func() { _ = NewRegistry().Group("m", "h", "event", "a").Get("b") },
		"negative add": func() { NewRegistry().Group("m", "h", "event", "a").Add("a", -2) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		})
	}
}

// TestRegistryConcurrentObserveRender is the race-mode gate for the
// lock-free hot path: writers on every metric kind race a continuous
// scraper, and the final counts must still be exact.
func TestRegistryConcurrentObserveRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c", nil)
	g := reg.Gauge("g", "g", nil)
	h := reg.Histogram("h_seconds", "h", DefLatencyBuckets(), nil)
	grp := reg.Group("events_total", "e", "event", "x", "y")

	const writers, perWriter = 8, 2000
	var wg, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	scraperWG.Add(1)
	go func() { // continuous scraper
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if s := reg.Render(); !strings.Contains(s, "h_seconds_count") {
					t.Error("render lost the histogram mid-flight")
					return
				}
			}
		}
	}()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(j%100) * 1e-4)
				if j%2 == 0 {
					grp.Inc("x")
				} else {
					grp.Inc("y")
				}
			}
		}(i)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) { // racing lazy registration of the same series
			defer wg.Done()
			reg.Counter("late_total", "late", nil).Inc()
		}(i)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	if got := c.Get(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := g.Get(); got != writers*perWriter/2 {
		t.Errorf("gauge = %v, want %v", got, writers*perWriter/2)
	}
	if got := grp.Get("x") + grp.Get("y"); got != writers*perWriter {
		t.Errorf("group total = %d, want %d", got, writers*perWriter)
	}
	if got := reg.Counter("late_total", "late", nil).Get(); got != writers {
		t.Errorf("racing registration lost increments: %d, want %d", got, writers)
	}
}
