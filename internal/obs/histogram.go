package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram with a lock-free Observe:
// one binary search plus two atomic adds per observation, no allocation.
// Buckets are cumulative-upper-bound ("le") in the Prometheus sense: an
// observation lands in the first bucket whose bound is >= the value, with
// an implicit +Inf overflow bucket at the end. The bucket layout is fixed
// at registration because resizing under concurrent observers would need
// the very locks the hot path exists to avoid.
type Histogram struct {
	bounds  []float64      // strictly increasing, finite upper bounds
	buckets []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sumBits atomic.Uint64  // float64 bits of the running sum, CAS-added
}

// Histogram returns the histogram for (name, labels), creating and
// registering it on first use. bounds must be strictly increasing and
// finite; they are copied. Re-registering with different bounds panics,
// since two scrapes of one series must agree on the bucket layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bound %v is not finite", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %v", name, b))
		}
	}
	s := r.register(name, help, kindHistogram, labels, func() series {
		h := &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		return h
	})
	h := s.(*Histogram)
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// ExpBuckets returns n exponentially spaced bounds: start, start*factor,
// start*factor², ... — the natural shape for latencies, which span orders
// of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets covers 10µs to ~5s in factor-2 steps — wide enough
// for both a sub-millisecond greedy rung and a multi-second stalled solve.
func DefLatencyBuckets() []float64 { return ExpBuckets(10e-6, 2, 20) }

// Observe records one value. NaN observations are dropped: they carry no
// ordering information and would poison the sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile as the upper bound of the bucket
// holding the nearest-rank observation — the same ceil(q·n) convention as
// stats.ECDF.Quantile, so histogram-derived and sample-derived percentiles
// agree on which rank they mean. Out-of-range q is clamped; q = NaN, an
// empty histogram, or a rank landing in the +Inf overflow bucket return
// NaN, NaN and +Inf respectively.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

func (h *Histogram) writeProm(w io.Writer, name, labels string) {
	// Bucket lines carry the existing labels plus le; splice le inside the
	// braces (or open a fresh set when the series is unlabelled).
	prefix, suffix := "{", "}"
	if labels != "" {
		prefix, suffix = labels[:len(labels)-1]+",", "}"
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q%s %d\n", name, prefix, formatFloat(b), suffix, cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, prefix, suffix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	// Render count from the same cumulative walk so _count always equals
	// the +Inf bucket within one scrape, as the format requires.
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// Timer measures a wall-clock duration for histogram observation. It is
// the one sanctioned wall-clock bridge for the simulation packages:
// instrumentation may time itself through here, but the readings feed
// metrics only, never results, so same-seed reproducibility holds.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer {
	return Timer{start: time.Now()} //lint:allow rngdeterminism instrumentation timing feeds metrics only, never simulation results
}

// Elapsed returns the time since StartTimer.
func (t Timer) Elapsed() time.Duration {
	return time.Since(t.start) //lint:allow rngdeterminism instrumentation timing feeds metrics only, never simulation results
}

// ObserveSeconds records the elapsed time into h in seconds and returns it.
func (t Timer) ObserveSeconds(h *Histogram) time.Duration {
	d := t.Elapsed()
	h.Observe(d.Seconds())
	return d
}
