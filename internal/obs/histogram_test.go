package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation
// exactly on a bound lands in that bound's bucket (le is inclusive), one
// just above rolls to the next, and values past the last bound land in
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, nil)
	for _, v := range []float64{
		0.0005,  // below first bound -> bucket 0
		0.001,   // exactly on a bound -> inclusive, bucket 0
		0.0011,  // just above -> bucket 1
		0.01,    // bucket 1
		0.1,     // bucket 2
		0.10001, // overflow -> +Inf
		5,       // overflow -> +Inf
	} {
		h.Observe(v)
	}
	wantCum := []int64{2, 4, 5} // cumulative per finite bound
	for i, want := range wantCum {
		var cum int64
		for j := 0; j <= i; j++ {
			cum += h.buckets[j].Load()
		}
		if cum != want {
			t.Errorf("cumulative count at le=%v: %d, want %d", h.bounds[i], cum, want)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	wantSum := 0.0005 + 0.001 + 0.0011 + 0.01 + 0.1 + 0.10001 + 5
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-12 {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}

	out := reg.Render()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.001"} 2`,
		`lat_seconds_bucket{le="0.01"} 4`,
		`lat_seconds_bucket{le="0.1"} 5`,
		`lat_seconds_bucket{le="+Inf"} 7`,
		`lat_seconds_count 7`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("render missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramLabelledRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lad_seconds", "ladder", []float64{1}, Labels{"level": "greedy"})
	h.Observe(0.5)
	out := reg.Render()
	for _, line := range []string{
		`lad_seconds_bucket{level="greedy",le="1"} 1`,
		`lad_seconds_bucket{level="greedy",le="+Inf"} 1`,
		`lad_seconds_sum{level="greedy"} 0.5`,
		`lad_seconds_count{level="greedy"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("render missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	h := NewRegistry().Histogram("h", "h", []float64{1}, nil)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN observation was counted")
	}
	h.Observe(0.5)
	if h.Count() != 1 || math.IsNaN(h.Sum()) {
		t.Error("NaN observation poisoned the histogram")
	}
}

// TestHistogramQuantile pins the nearest-rank convention shared with
// stats.ECDF.Quantile: rank ceil(q·n) clamped into [1, n], answered with
// the bucket upper bound holding that rank.
func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("h", "h", []float64{1, 2, 4, 8}, nil)
	// 4 observations ≤1, 3 in (1,2], 2 in (2,4], 1 in (4,8].
	for i, n := range []int{4, 3, 2, 1} {
		for j := 0; j < n; j++ {
			h.Observe(float64(int(1) << i)) // 1, 2, 4, 8: exactly on bounds
		}
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1},    // rank clamps to 1 -> first bound
		{0.1, 1},  // rank 1
		{0.4, 1},  // rank 4, cum(1)=4
		{0.5, 2},  // rank 5 -> second bucket
		{0.7, 2},  // rank 7, cum(2)=7
		{0.9, 4},  // rank 9, cum(4)=9
		{0.99, 8}, // rank 10
		{1, 8},    // rank n
		{-3, 1},   // clamped below
		{17, 8},   // clamped above
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewRegistry().Histogram("h", "h", []float64{1, 2}, nil)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram should answer NaN")
	}
	h.Observe(10) // lands in +Inf overflow
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Errorf("overflow-only histogram Quantile = %v, want +Inf", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, 2, 4) should panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

func TestDefLatencyBucketsCoverServingRange(t *testing.T) {
	b := DefLatencyBuckets()
	if b[0] > 50e-6 {
		t.Errorf("first bucket %v too coarse for a sub-100µs greedy rung", b[0])
	}
	if last := b[len(b)-1]; last < 2 {
		t.Errorf("last bucket %v cannot hold a multi-second stalled solve", last)
	}
}

func TestTimerObserves(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "h", DefLatencyBuckets(), nil)
	tm := StartTimer()
	time.Sleep(2 * time.Millisecond)
	d := tm.ObserveSeconds(h)
	if d < 2*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 2ms", d)
	}
	if h.Count() != 1 {
		t.Errorf("timer did not observe into the histogram")
	}
	if h.Sum() < 0.002 {
		t.Errorf("observed %v seconds, want >= 0.002", h.Sum())
	}
}
