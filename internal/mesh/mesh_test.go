package mesh

import (
	"math"
	"testing"

	"repro/internal/phy"
	"repro/internal/topo"
)

func pl(t *testing.T) phy.PathLoss {
	t.Helper()
	p, err := phy.NewPathLoss(3.2, 1, 58)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const bits = 12000.0

func TestConstructorsValidate(t *testing.T) {
	good := pl(t)
	if _, err := NewNetwork([]topo.Point{{}}, good, phy.Wifi20MHz); err == nil {
		t.Error("single node accepted")
	}
	if _, err := NewNetwork([]topo.Point{{}, {X: 5}}, phy.PathLoss{}, phy.Wifi20MHz); err == nil {
		t.Error("empty path loss accepted")
	}
	if _, err := NewNetwork([]topo.Point{{}, {X: 5}}, good, phy.Channel{}); err == nil {
		t.Error("empty channel accepted")
	}
	if _, err := NewChain(nil, good, phy.Wifi20MHz); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain([]float64{10, -1}, good, phy.Wifi20MHz); err == nil {
		t.Error("negative hop accepted")
	}
}

func TestChainGeometry(t *testing.T) {
	n, err := NewChain([]float64{10, 4, 10}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Nodes) != 4 {
		t.Fatalf("chain has %d nodes, want 4", len(n.Nodes))
	}
	if n.Nodes[3].X != 24 {
		t.Errorf("last node at %v, want 24", n.Nodes[3].X)
	}
	// SNR symmetric in distance.
	if n.SNR(0, 2) != n.SNR(2, 0) {
		t.Error("SNR not symmetric")
	}
}

func TestRouteChain(t *testing.T) {
	// Long chain: hop-by-hop beats any long jump under α=3.2.
	n, err := NewChain([]float64{20, 20, 20, 20}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	path, err := n.Route(0, 4, bits)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestRouteSkipsUselessRelays(t *testing.T) {
	// A relay a tiny detour away from a short direct hop: ETT routing must
	// go direct.
	nodes := []topo.Point{{}, {X: 4, Y: 0.5}, {X: 8}}
	n, err := NewNetwork(nodes, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	path, err := n.Route(0, 2, bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("expected the direct link, got %v", path)
	}
}

func TestRouteErrors(t *testing.T) {
	n, err := NewChain([]float64{10}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Route(-1, 1, bits); err == nil {
		t.Error("bad src accepted")
	}
	if _, err := n.Route(0, 1, 0); err == nil {
		t.Error("zero bits accepted")
	}
	p, err := n.Route(0, 0, bits)
	if err != nil || len(p) != 1 {
		t.Errorf("self route: %v %v", p, err)
	}
	// Unreachable: a node far beyond the usable-SNR horizon.
	far, err := NewNetwork([]topo.Point{{}, {X: 1e6}}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := far.Route(0, 1, bits); err == nil {
		t.Error("unreachable route accepted")
	}
}

func TestCompatibleSharedNode(t *testing.T) {
	n, err := NewChain([]float64{10, 10}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	// Links sharing node 1 can never be concurrent.
	if n.Compatible(Link{0, 1}, Link{1, 2}, true) {
		t.Error("links sharing a node reported compatible")
	}
}

// The §4.3 recipe: long-short-long chain, A→C concurrent with D→E via SIC.
func TestLongShortLongEnablesSIC(t *testing.T) {
	n, err := NewChain([]float64{30, 4, 30}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	ac := Link{0, 1}
	de := Link{2, 3}
	if !n.Compatible(ac, de, true) {
		t.Error("long-short-long should allow SIC concurrency of the outer links")
	}
	if n.Compatible(ac, de, false) {
		t.Error("without SIC the adjacent interference is not negligible")
	}

	// Short hops everywhere: downstream rate too high to decode at the relay.
	short, err := NewChain([]float64{8, 4, 8}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	if short.Compatible(Link{0, 1}, Link{2, 3}, true) {
		t.Error("short hops should break the SIC decode condition")
	}
}

func TestScheduleFlowThroughput(t *testing.T) {
	n, err := NewChain([]float64{30, 4, 30}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	path := []int{0, 1, 2, 3}
	serial, err := n.ScheduleFlow(path, bits, false)
	if err != nil {
		t.Fatal(err)
	}
	sic, err := n.ScheduleFlow(path, bits, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Groups) != 3 {
		t.Errorf("no-SIC schedule groups = %d, want 3 (fully serial)", len(serial.Groups))
	}
	if len(sic.Groups) != 2 {
		t.Errorf("SIC schedule groups = %d, want 2 (outer links share a slot)", len(sic.Groups))
	}
	if sic.Throughput <= serial.Throughput {
		t.Errorf("SIC throughput %v should beat serial %v", sic.Throughput, serial.Throughput)
	}
	// Cycle-time bookkeeping.
	if math.Abs(sic.Throughput-bits/sic.CycleTime) > 1e-9 {
		t.Error("throughput != bits/cycle")
	}
}

// On a long uniform chain, plain spatial reuse already groups far-apart
// links; SIC should never do worse.
func TestLongChainSpatialReuse(t *testing.T) {
	hops := make([]float64, 10)
	for i := range hops {
		hops[i] = 25
	}
	n, err := NewChain(hops, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	path := make([]int, len(hops)+1)
	for i := range path {
		path[i] = i
	}
	serial, err := n.ScheduleFlow(path, bits, false)
	if err != nil {
		t.Fatal(err)
	}
	sic, err := n.ScheduleFlow(path, bits, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Groups) >= len(hops) {
		t.Errorf("10-hop chain should show spatial reuse even without SIC, got %d groups", len(serial.Groups))
	}
	if sic.Throughput < serial.Throughput-1e-12 {
		t.Errorf("SIC made the chain worse: %v vs %v", sic.Throughput, serial.Throughput)
	}
}

func TestScheduleFlowErrors(t *testing.T) {
	n, err := NewChain([]float64{10}, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ScheduleFlow([]int{0}, bits, true); err == nil {
		t.Error("single-node path accepted")
	}
	if _, err := n.ScheduleFlow([]int{0, 1}, 0, true); err == nil {
		t.Error("zero bits accepted")
	}
}

// Dijkstra invariants: every prefix of a min-ETT route is itself a min-ETT
// route, and the route's total ETT never exceeds the direct link's.
func TestRouteOptimalityInvariants(t *testing.T) {
	// A 2-D scatter with enough nodes for nontrivial routes.
	nodes := []topo.Point{
		{}, {X: 18, Y: 3}, {X: 36, Y: -2}, {X: 54, Y: 4},
		{X: 25, Y: 20}, {X: 45, Y: 18}, {X: 70, Y: 0},
	}
	n, err := NewNetwork(nodes, pl(t), phy.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	ett := func(path []int) float64 {
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			total += bits / n.Rate(Link{From: path[i], To: path[i+1]})
		}
		return total
	}
	for dst := 1; dst < len(nodes); dst++ {
		path, err := n.Route(0, dst, bits)
		if err != nil {
			t.Fatalf("route 0->%d: %v", dst, err)
		}
		if path[0] != 0 || path[len(path)-1] != dst {
			t.Fatalf("route endpoints wrong: %v", path)
		}
		// No repeated nodes.
		seen := map[int]bool{}
		for _, v := range path {
			if seen[v] {
				t.Fatalf("route revisits node %d: %v", v, path)
			}
			seen[v] = true
		}
		// Never worse than the direct link (when usable).
		direct := bits / n.Rate(Link{From: 0, To: dst})
		if total := ett(path); total > direct+1e-12 {
			t.Errorf("route 0->%d ETT %v worse than direct %v", dst, total, direct)
		}
		// Prefix optimality: the route to every intermediate node equals
		// Dijkstra's answer for that node.
		for i := 1; i < len(path)-1; i++ {
			sub, err := n.Route(0, path[i], bits)
			if err != nil {
				t.Fatalf("subroute 0->%d: %v", path[i], err)
			}
			if ett(sub) > ett(path[:i+1])+1e-12 {
				t.Errorf("prefix to %d (ETT %v) beats Dijkstra's own answer (%v)",
					path[i], ett(path[:i+1]), ett(sub))
			}
		}
	}
}
