// Package mesh models the paper's §4.3 multihop mesh setting as a real
// substrate: router topologies, expected-transmission-time routing, and
// TDMA link scheduling in which two links may be active simultaneously
// either because their mutual interference is negligible (ordinary spatial
// reuse) or because a receiver can decode-and-cancel the interfering
// transmission (SIC — the self-interference case of the A→C→D→E pipeline).
//
// The paper's observation falls out of the model: long-hop/short-hop/long-
// hop paths are "a perfect recipe for SIC" because the relay hears the
// downstream transmitter loudly enough to cancel it, while uniformly short
// hops push the downstream rate beyond what the relay can decode.
package mesh

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/phy"
	"repro/internal/topo"
)

// Network is a set of mesh routers over a propagation model.
type Network struct {
	// Nodes are router positions.
	Nodes []topo.Point
	// PathLoss maps distance to SNR.
	PathLoss phy.PathLoss
	// Channel supplies bandwidth.
	Channel phy.Channel
	// MinLinkSNRdB is the weakest usable link (routing ignores links below
	// it). Default 3 dB via NewChain/NewNetwork.
	MinLinkSNRdB float64
}

// NewNetwork builds a mesh over explicit positions.
func NewNetwork(nodes []topo.Point, pl phy.PathLoss, ch phy.Channel) (*Network, error) {
	if len(nodes) < 2 {
		return nil, errors.New("mesh: need at least two nodes")
	}
	if pl.RefSNR <= 0 {
		return nil, errors.New("mesh: PathLoss is required")
	}
	if ch.BandwidthHz <= 0 {
		return nil, errors.New("mesh: Channel is required")
	}
	return &Network{
		Nodes:        nodes,
		PathLoss:     pl,
		Channel:      ch,
		MinLinkSNRdB: 3,
	}, nil
}

// NewChain builds a linear topology with the given hop lengths (meters):
// node 0 at the origin, node i+1 hopLens[i] meters further along the x-axis.
func NewChain(hopLens []float64, pl phy.PathLoss, ch phy.Channel) (*Network, error) {
	if len(hopLens) == 0 {
		return nil, errors.New("mesh: chain needs at least one hop")
	}
	nodes := make([]topo.Point, len(hopLens)+1)
	x := 0.0
	for i, h := range hopLens {
		if h <= 0 {
			return nil, fmt.Errorf("mesh: non-positive hop length %v at %d", h, i)
		}
		x += h
		nodes[i+1] = topo.Point{X: x}
	}
	return NewNetwork(nodes, pl, ch)
}

// SNR returns the linear SNR of a transmission from node i heard at node j.
func (n *Network) SNR(i, j int) float64 {
	return n.PathLoss.SNRAt(n.Nodes[i].Dist(n.Nodes[j]))
}

// Link is a directed transmission i → j.
type Link struct {
	From, To int
}

// Rate returns the link's interference-free Shannon rate.
func (n *Network) Rate(l Link) float64 {
	return n.Channel.Capacity(n.SNR(l.From, l.To))
}

// Route computes the minimum-ETT path (expected transmission time: packet
// airtime at the link's clean rate) from src to dst using Dijkstra over all
// usable links. It returns the node sequence including both endpoints.
func (n *Network) Route(src, dst int, bits float64) ([]int, error) {
	if src < 0 || src >= len(n.Nodes) || dst < 0 || dst >= len(n.Nodes) {
		return nil, errors.New("mesh: route endpoints out of range")
	}
	if src == dst {
		return []int{src}, nil
	}
	if bits <= 0 {
		return nil, errors.New("mesh: bits must be positive")
	}
	minSNR := phy.FromDB(n.MinLinkSNRdB)

	const unvisited = -1
	dist := make([]float64, len(n.Nodes))
	prev := make([]int, len(n.Nodes))
	done := make([]bool, len(n.Nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = unvisited
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := range dist {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 {
			break
		}
		if u == dst {
			break
		}
		done[u] = true
		for v := range n.Nodes {
			if v == u || done[v] {
				continue
			}
			snr := n.SNR(u, v)
			if snr < minSNR {
				continue
			}
			ett := phy.TxTime(bits, n.Channel.Capacity(snr))
			if d := dist[u] + ett; d < dist[v] {
				dist[v] = d
				prev[v] = u
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, fmt.Errorf("mesh: no route from %d to %d", src, dst)
	}
	var path []int
	for v := dst; v != unvisited; v = prev[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if path[0] != src {
		return nil, fmt.Errorf("mesh: route reconstruction failed")
	}
	return path, nil
}

// Compatible reports whether two links can be active in the same TDMA slot.
// Links sharing a node never can (half-duplex radios). Otherwise each
// receiver must cope with the other link's transmitter, using the paper's
// own interference convention (§3.2's case analysis):
//
//   - interference strictly weaker than the signal of interest: tolerated
//     (capture — the paper's Eqs. 7-9 keep such a receiver at its clean
//     rate), with or without SIC;
//   - interference at or above the signal: allowed only with SIC, and only
//     if the interferer's own-link rate is decodable at this receiver (the
//     §4.3 condition) — then it is cancelled and the link runs clean.
func (n *Network) Compatible(a, b Link, sic bool) bool {
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return false
	}
	return n.receiverTolerates(a, b, sic) && n.receiverTolerates(b, a, sic)
}

// receiverTolerates checks link v's receiver against link i's transmitter.
func (n *Network) receiverTolerates(v, i Link, sic bool) bool {
	interf := n.SNR(i.From, v.To)
	signal := n.SNR(v.From, v.To)
	if interf < signal {
		return true // weaker interference: capture, per the paper's convention
	}
	if !sic {
		return false
	}
	// SIC: decode the interferer first. It transmits at its own link's
	// clean rate; our SINR for it must support that rate.
	interfererRate := n.Rate(i)
	return n.Channel.Capacity(phy.SINR(interf, signal)) >= interfererRate
}

// FlowSchedule is the steady-state TDMA schedule of one flow's path.
type FlowSchedule struct {
	// Groups are sets of path-link indices active together; the slot time
	// of a group is its slowest member's airtime.
	Groups [][]int
	// CycleTime is the per-packet pipeline period (sum of group slots).
	CycleTime float64
	// Throughput is bits per CycleTime.
	Throughput float64
}

// ScheduleFlow builds a greedy link-grouping schedule for the path: each
// link joins the first earlier group whose members it is compatible with.
// With sic=false only plain spatial reuse groups links; with sic=true the
// §4.3 cancellation concurrency applies too.
func (n *Network) ScheduleFlow(path []int, bits float64, sic bool) (FlowSchedule, error) {
	if len(path) < 2 {
		return FlowSchedule{}, errors.New("mesh: path needs at least one link")
	}
	if bits <= 0 {
		return FlowSchedule{}, errors.New("mesh: bits must be positive")
	}
	links := make([]Link, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		links[i] = Link{From: path[i], To: path[i+1]}
		if n.Rate(links[i]) <= 0 {
			return FlowSchedule{}, fmt.Errorf("mesh: dead link %d→%d", path[i], path[i+1])
		}
	}

	var groups [][]int
	for li := range links {
		placed := false
		for gi := range groups {
			ok := true
			for _, other := range groups[gi] {
				if !n.Compatible(links[li], links[other], sic) {
					ok = false
					break
				}
			}
			if ok {
				groups[gi] = append(groups[gi], li)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{li})
		}
	}

	var cycle float64
	for _, g := range groups {
		worst := 0.0
		for _, li := range g {
			if t := phy.TxTime(bits, n.Rate(links[li])); t > worst {
				worst = t
			}
		}
		cycle += worst
	}
	return FlowSchedule{
		Groups:     groups,
		CycleTime:  cycle,
		Throughput: bits / cycle,
	}, nil
}
