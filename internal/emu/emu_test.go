package emu

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

func emuCfg() Config {
	return Config{
		Channel:    phy.Wifi20MHz,
		PacketBits: 12000,
	}
}

func emuStations(backlog int, dbs ...float64) []mac.Station {
	sts := make([]mac.Station, len(dbs))
	for i, db := range dbs {
		sts[i] = mac.Station{ID: uint32(i + 1), SNR: phy.FromDB(db), Backlog: backlog}
	}
	return sts
}

func TestEmuValidation(t *testing.T) {
	ctx := context.Background()
	bad := emuCfg()
	bad.Channel = phy.Channel{}
	if _, err := Run(ctx, emuStations(1, 20), bad); err == nil {
		t.Error("missing channel accepted")
	}
	bad = emuCfg()
	bad.PacketBits = 100
	if _, err := Run(ctx, emuStations(1, 20), bad); err == nil {
		t.Error("tiny packets accepted")
	}
	bad = emuCfg()
	bad.Residual = 2
	if _, err := Run(ctx, emuStations(1, 20), bad); err == nil {
		t.Error("residual > 1 accepted")
	}
	if _, err := Run(ctx, []mac.Station{{ID: 0, SNR: 10, Backlog: 1}}, emuCfg()); err == nil {
		t.Error("AP id accepted as station")
	}
	if _, err := Run(ctx, []mac.Station{
		{ID: 1, SNR: 10, Backlog: 1}, {ID: 1, SNR: 20, Backlog: 1},
	}, emuCfg()); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestEmuDrainsEverything(t *testing.T) {
	sts := emuStations(3, 30, 15, 28, 14)
	res, err := Run(context.Background(), sts, emuCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sts {
		if res.Delivered[s.ID] != 3 {
			t.Errorf("station %d delivered %d, want 3", s.ID, res.Delivered[s.ID])
		}
	}
	if res.DecodeFailures != 0 {
		t.Errorf("perfect SIC failed %d decodes", res.DecodeFailures)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Rounds)
	}
	if !res.Drained {
		t.Error("full drain not reported as Drained")
	}
}

// The live concurrent emulation must reproduce the event-driven simulator's
// data airtime — the protocol is the same, only the execution machinery
// differs. Commanded rates are quantised to kbit/s on the trigger frame, so
// allow that much slack.
func TestEmuMatchesEventSimulator(t *testing.T) {
	sts := emuStations(2, 32, 16, 28, 13, 24, 11)
	emuRes, err := Run(context.Background(), sts, emuCfg())
	if err != nil {
		t.Fatal(err)
	}
	macCfg := mac.DefaultConfig(phy.Wifi20MHz)
	opts := sched.Options{Channel: phy.Wifi20MHz, PacketBits: 12000}
	macRes, err := mac.RunScheduled(sts, macCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(emuRes.AirtimeData-macRes.AirtimeData) / macRes.AirtimeData; d > 1e-3 {
		t.Errorf("emulated airtime %v vs simulated %v (rel diff %v)",
			emuRes.AirtimeData, macRes.AirtimeData, d)
	}
	for _, s := range sts {
		if emuRes.Delivered[s.ID] != macRes.Delivered[s.ID] {
			t.Errorf("station %d delivered %d (emu) vs %d (mac)",
				s.ID, emuRes.Delivered[s.ID], macRes.Delivered[s.ID])
		}
	}
}

func TestEmuDeterministic(t *testing.T) {
	sts := emuStations(2, 30, 15, 22)
	a, err := Run(context.Background(), sts, emuCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sts, emuCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.AirtimeData != b.AirtimeData || a.Rounds != b.Rounds {
		t.Errorf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestEmuPowerControl(t *testing.T) {
	cfg := emuCfg()
	cfg.Sched = sched.Options{Channel: cfg.Channel, PacketBits: cfg.PacketBits, PowerControl: true}
	sts := emuStations(1, 26, 25)
	res, err := Run(context.Background(), sts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[1] != 1 || res.Delivered[2] != 1 {
		t.Errorf("power-controlled pair did not drain: %+v", res.Delivered)
	}
	if res.DecodeFailures != 0 {
		t.Errorf("decode failures: %d", res.DecodeFailures)
	}
}

func TestEmuResidualAware(t *testing.T) {
	cfg := emuCfg()
	cfg.Residual = 0.01
	cfg.Sched = sched.Options{Channel: cfg.Channel, PacketBits: cfg.PacketBits, Residual: 0.01}
	sts := emuStations(2, 30, 15)
	res, err := Run(context.Background(), sts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeFailures != 0 {
		t.Errorf("residual-aware emulation failed %d decodes", res.DecodeFailures)
	}
	if res.Delivered[1] != 2 || res.Delivered[2] != 2 {
		t.Errorf("did not drain: %+v", res.Delivered)
	}
}

func TestEmuUnawareResidualRetries(t *testing.T) {
	cfg := emuCfg()
	cfg.Residual = 0.05 // receiver imperfect, scheduler unaware
	sts := emuStations(1, 30, 15)
	res, err := Run(context.Background(), sts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeFailures == 0 {
		t.Error("unaware schedule should fail at least one decode")
	}
	if res.Delivered[1] != 1 || res.Delivered[2] != 1 {
		t.Errorf("ARQ recovery incomplete: %+v", res.Delivered)
	}
}

func TestEmuContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort promptly
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, emuStations(50, 30, 15, 28, 14), emuCfg())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled run reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

func TestEmuPollOverheadAccounted(t *testing.T) {
	res, err := Run(context.Background(), emuStations(1, 30, 15), emuCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.AirtimeOverhead <= 0 {
		t.Error("backlog polling should cost overhead airtime")
	}
	if res.AirtimeOverhead >= res.AirtimeData {
		t.Errorf("tiny report frames (%v) should cost less than data (%v)",
			res.AirtimeOverhead, res.AirtimeData)
	}
}

func TestEmuBacklogReportsDriveTermination(t *testing.T) {
	// A station with zero backlog participates in polls but never data.
	sts := []mac.Station{
		{ID: 1, SNR: phy.FromDB(30), Backlog: 2},
		{ID: 2, SNR: phy.FromDB(18), Backlog: 0},
	}
	res, err := Run(context.Background(), sts, emuCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered[2] != 0 {
		t.Errorf("idle station delivered %d frames", res.Delivered[2])
	}
	if res.Delivered[1] != 2 {
		t.Errorf("active station delivered %d, want 2", res.Delivered[1])
	}
}

func TestTxAirtimeZeroRate(t *testing.T) {
	if got := txAirtime(transmission{rate: 0, wire: []byte{1}}); !math.IsInf(got, 1) {
		t.Errorf("zero-rate airtime = %v, want +Inf", got)
	}
}

func TestMediumRejectsUnknownSlot(t *testing.T) {
	med := &medium{pending: map[slotKey]*pendingSlot{}}
	err := med.transmit(transmission{slot: slotKey(99)})
	if err == nil {
		t.Error("transmission into unregistered slot accepted")
	}
	if err := med.absent(slotKey(99), 1); err == nil {
		t.Error("absence report for unregistered slot accepted")
	}
}

func TestStationRejectsBadTrigger(t *testing.T) {
	s := &stationActor{id: 7, snr: 100, ch: phy.Wifi20MHz, bits: 12000,
		med: &medium{pending: map[slotKey]*pendingSlot{}}}
	// Garbage payload.
	bad := &frame.Frame{Type: frame.TypePoll, Payload: []byte{1, 2, 3}}
	if err := s.handleTrigger(bad); err == nil {
		t.Error("garbage trigger accepted")
	}
	// Zero commanded rate.
	payload, err := frame.MarshalSchedule([]frame.ScheduleEntry{{A: 7, B: frame.Broadcast, WeakScaleMicros: 1000000}})
	if err != nil {
		t.Fatal(err)
	}
	zero := &frame.Frame{Type: frame.TypePoll, Payload: payload, DurationUS: 0}
	if err := s.handleTrigger(zero); err == nil {
		t.Error("zero-rate trigger accepted")
	}
	// Trigger for another station: silently ignored.
	payload2, err := frame.MarshalSchedule([]frame.ScheduleEntry{{A: 99, B: frame.Broadcast, WeakScaleMicros: 1000000}})
	if err != nil {
		t.Fatal(err)
	}
	other := &frame.Frame{Type: frame.TypePoll, Payload: payload2, DurationUS: 1000}
	if err := s.handleTrigger(other); err != nil {
		t.Errorf("trigger for another station errored: %v", err)
	}
}
