package emu

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

// waitGoroutinesBack polls until the goroutine count returns to (near) the
// recorded baseline, failing the test if emulator goroutines leaked.
func waitGoroutinesBack(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.Gosched(); runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEmuMidRunCancellationNoLeak cancels a large run mid-flight: Run must
// return promptly with the context error and every station goroutine must
// exit.
func TestEmuMidRunCancellationNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Backlog sized so the run is still mid-flight when cancel fires,
		// even on a fast machine; the cancel keeps the test itself quick.
		_, err := Run(ctx, emuStations(50000, 30, 15, 28, 14, 22, 11), emuCfg())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	waitGoroutinesBack(t, baseline)
}

// TestEmuFaultyRunNoLeak drains a faulty run to completion and checks the
// retry/timeout machinery tears down cleanly.
func TestEmuFaultyRunNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := emuCfg()
	cfg.Seed = 5
	cfg.Faults = FaultModel{Loss: 0.1, Corrupt: 0.05, Stall: 0.1}
	res, err := Run(context.Background(), emuStations(4, 30, 15, 28, 14), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("did not drain: %+v", res)
	}
	waitGoroutinesBack(t, baseline)
}

// TestStationErrorDuringDeliver exercises the AP's teardown path when a
// station actor has died with an error while the AP is blocked delivering
// into its (full, unread) inbox: runAP must surface the actor's error
// promptly instead of deadlocking.
func TestStationErrorDuringDeliver(t *testing.T) {
	stations := []mac.Station{{ID: 1, SNR: phy.FromDB(25), Backlog: 1}}
	med := &medium{
		rx:      mac.SICReceiver{Channel: phy.Wifi20MHz},
		pending: map[slotKey]*pendingSlot{},
	}
	// The actor has no goroutine draining its unbuffered inbox — as if it
	// crashed after posting its error.
	actors := map[uint32]*stationActor{
		1: {id: 1, snr: phy.FromDB(25), inbox: make(chan *frame.Frame), med: med, ch: phy.Wifi20MHz, bits: 12000},
	}
	errc := make(chan error, 1)
	boom := errors.New("station actor exploded")
	errc <- boom

	done := make(chan error, 1)
	go func() {
		_, err := runAP(context.Background(), stations, actors, med,
			sched.Options{Channel: phy.Wifi20MHz, PacketBits: 12000},
			Config{Channel: phy.Wifi20MHz, PacketBits: 12000}, errc)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Errorf("runAP returned %v, want the actor's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runAP deadlocked on a dead station's inbox")
	}
}

// TestStationErrorDuringExecSlot exercises the AP's other wait: the trigger
// was delivered but the slot never resolves because the station died
// instead of transmitting. The posted error must unblock the slot wait.
func TestStationErrorDuringExecSlot(t *testing.T) {
	stations := []mac.Station{{ID: 1, SNR: phy.FromDB(25), Backlog: 1}}
	med := &medium{
		rx:      mac.SICReceiver{Channel: phy.Wifi20MHz},
		pending: map[slotKey]*pendingSlot{},
	}
	// Buffered inbox, no reader: the trigger lands but nothing answers.
	actors := map[uint32]*stationActor{
		1: {id: 1, snr: phy.FromDB(25), inbox: make(chan *frame.Frame, 8), med: med, ch: phy.Wifi20MHz, bits: 12000},
	}
	errc := make(chan error, 1)
	boom := errors.New("station actor died mid-slot")

	done := make(chan error, 1)
	go func() {
		_, err := runAP(context.Background(), stations, actors, med,
			sched.Options{Channel: phy.Wifi20MHz, PacketBits: 12000},
			Config{Channel: phy.Wifi20MHz, PacketBits: 12000}, errc)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the AP reach the slot wait
	errc <- boom
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Errorf("runAP returned %v, want the actor's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runAP never observed the actor error while waiting on a slot")
	}
}

// TestStationActorErrorPropagates drives a station actor goroutine into an
// error (a trigger for a slot the medium does not know) and checks that it
// posts the error and exits rather than spinning.
func TestStationActorErrorPropagates(t *testing.T) {
	med := &medium{pending: map[slotKey]*pendingSlot{}}
	s := &stationActor{
		id: 7, snr: 100, backlog: 1,
		inbox: make(chan *frame.Frame, 1),
		med:   med, ch: phy.Wifi20MHz, bits: 12000,
	}
	errc := make(chan error, 1)
	exited := make(chan struct{})
	go func() {
		s.run(context.Background(), errc)
		close(exited)
	}()

	payload, err := frame.MarshalSchedule([]frame.ScheduleEntry{{A: 7, B: frame.Broadcast, WeakScaleMicros: 1_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	s.inbox <- &frame.Frame{Type: frame.TypePoll, Seq: 42, DurationUS: 6000, Payload: payload}

	select {
	case err := <-errc:
		if !strings.Contains(err.Error(), "unknown slot") {
			t.Errorf("unexpected actor error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("actor never posted its error")
	}
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("actor goroutine did not exit after erroring")
	}
}
