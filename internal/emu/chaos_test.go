package emu

import (
	"bytes"
	"testing"
)

// TestWireChaosDeterminism: two chaos instances with the same seed must
// agree on every decision; a different seed must diverge somewhere.
func TestWireChaosDeterminism(t *testing.T) {
	model := FaultModel{Loss: 0.2, Corrupt: 0.2, Stall: 0.1}
	a, err := NewWireChaos(model, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWireChaos(model, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWireChaos(model, 43)
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0xA5}, 28)
	diverged := false
	for station := uint32(1); station <= 20; station++ {
		for seq := uint32(0); seq < 50; seq++ {
			da, db, dc := a.Drop(station, seq), b.Drop(station, seq), c.Drop(station, seq)
			if da != db {
				t.Fatalf("same-seed Drop diverged at (%d,%d)", station, seq)
			}
			ca := a.Corrupt(buf, station, seq)
			cb := b.Corrupt(buf, station, seq)
			if !bytes.Equal(ca, cb) {
				t.Fatalf("same-seed Corrupt diverged at (%d,%d)", station, seq)
			}
			if sa, sb := a.Stall(station, seq), b.Stall(station, seq); sa != sb {
				t.Fatalf("same-seed Stall diverged at (%d,%d)", station, seq)
			}
			if da != dc {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged; rolls look seed-independent")
	}
	ia, ib := a.Injected(), b.Injected()
	if ia != ib {
		t.Fatalf("same-seed tallies differ: %+v vs %+v", ia, ib)
	}
	if ia.FramesLost == 0 || ia.CRCRejects == 0 {
		t.Fatalf("expected some injected faults, got %+v", ia)
	}
}

// TestWireChaosZeroModel: a zero model is a transparent pass-through.
func TestWireChaosZeroModel(t *testing.T) {
	c, err := NewWireChaos(FaultModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{1, 2, 3}
	for seq := uint32(0); seq < 100; seq++ {
		if c.Drop(1, seq) {
			t.Fatal("zero model dropped a datagram")
		}
		if got := c.Corrupt(buf, 1, seq); !bytes.Equal(got, buf) {
			t.Fatal("zero model corrupted a datagram")
		}
		if c.Stall(1, seq) != 0 {
			t.Fatal("zero model stalled")
		}
	}
	if tally := c.Injected(); tally.Total() != 0 {
		t.Fatalf("zero model tallied faults: %+v", tally)
	}
}

// TestWireChaosCorruptNeverMutatesInput: corruption must copy-on-write.
func TestWireChaosCorruptNeverMutatesInput(t *testing.T) {
	c, err := NewWireChaos(FaultModel{Corrupt: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	orig := bytes.Repeat([]byte{0x5A}, 16)
	buf := append([]byte(nil), orig...)
	out := c.Corrupt(buf, 3, 7)
	if !bytes.Equal(buf, orig) {
		t.Fatal("Corrupt mutated the caller's buffer")
	}
	if bytes.Equal(out, orig) {
		t.Fatal("Corrupt with probability 1 did not flip a bit")
	}
}

// TestWireChaosValidates: invalid probabilities are rejected.
func TestWireChaosValidates(t *testing.T) {
	if _, err := NewWireChaos(FaultModel{Loss: 1.5}, 0); err == nil {
		t.Fatal("Loss=1.5 accepted")
	}
	if _, err := NewWireChaos(FaultModel{Stall: -0.1}, 0); err == nil {
		t.Fatal("Stall=-0.1 accepted")
	}
}

// TestWireChaosAsymmetricPartition: a partition in one direction swallows
// every datagram in that direction, leaves the other direction to the
// seeded model, tallies its drops separately, and never perturbs the
// model's same-seed decisions.
func TestWireChaosAsymmetricPartition(t *testing.T) {
	model := FaultModel{Loss: 0.3}
	free, err := NewWireChaos(model, 99)
	if err != nil {
		t.Fatal(err)
	}
	parted, err := NewWireChaos(model, 99)
	if err != nil {
		t.Fatal(err)
	}
	parted.SetPartition(DirOut)

	const n = 500
	outDropped := 0
	for seq := uint32(1); seq <= n; seq++ {
		if !parted.DropDir(DirOut, 1, seq) {
			t.Fatalf("seq %d crossed an outbound partition", seq)
		}
		outDropped++
		// The inbound direction still follows the model, and its verdicts
		// match an un-partitioned instance with the same seed exactly.
		if parted.DropDir(DirIn, 1, seq) != free.Drop(1, seq) {
			t.Fatalf("seq %d: partition perturbed the seeded model", seq)
		}
	}
	if got := parted.PartitionDrops(); got != int64(outDropped) {
		t.Fatalf("PartitionDrops = %d, want %d", got, outDropped)
	}
	// Partition drops are deterministic overrides, not model faults: both
	// instances rolled the same n inbound fates, so their tallies agree
	// even though one also swallowed n outbound datagrams.
	if p, f := parted.Injected().FramesLost, free.Injected().FramesLost; p != f {
		t.Fatalf("partition drops leaked into the model tally: %d vs %d", p, f)
	}

	parted.ClearPartition()
	crossed := false
	for seq := uint32(n + 1); seq <= 2*n; seq++ {
		if !parted.DropDir(DirOut, 1, seq) {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("healed partition still drops everything")
	}

	// Both directions at once.
	parted.SetPartition(DirIn)
	parted.SetPartition(DirOut)
	if !parted.DropDir(DirIn, 1, 1) || !parted.DropDir(DirOut, 1, 1) {
		t.Fatal("two-way partition let a datagram through")
	}

	// A zero model still supports partitions: DropDir is the only fault.
	quiet, err := NewWireChaos(FaultModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.DropDir(DirIn, 1, 1) {
		t.Fatal("zero model dropped without a partition")
	}
	quiet.SetPartition(DirIn)
	if !quiet.DropDir(DirIn, 1, 1) || quiet.DropDir(DirOut, 1, 1) {
		t.Fatal("partition direction filter wrong on zero model")
	}
}
