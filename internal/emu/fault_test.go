package emu

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/frame"
	"repro/internal/mac"
)

// runWithTally executes a run and also captures the fault model's own
// injection tally, for cross-checking against the Result counters.
func runWithTally(t *testing.T, sts []mac.Station, cfg Config) (Result, mac.FaultCounters) {
	t.Helper()
	var tally mac.FaultCounters
	cfg.faultObserver = func(c mac.FaultCounters) { tally = c }
	res, err := Run(context.Background(), sts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, tally
}

// TestFaultMatrix drains the same topology across a grid of moderate fault
// rates and asserts the three core guarantees: every backlogged frame still
// arrives exactly once, the run is reproducible bit for bit, and the
// Result's failure counters agree with the fault model's own injection
// tally (two independently maintained accountings).
func TestFaultMatrix(t *testing.T) {
	sts := emuStations(3, 30, 15, 28, 14)
	for _, loss := range []float64{0, 0.02, 0.1} {
		for _, corrupt := range []float64{0, 0.05} {
			for _, stall := range []float64{0, 0.15} {
				loss, corrupt, stall := loss, corrupt, stall
				name := fmt.Sprintf("loss=%g/corrupt=%g/stall=%g", loss, corrupt, stall)
				t.Run(name, func(t *testing.T) {
					cfg := emuCfg()
					cfg.Seed = 7
					cfg.Faults = FaultModel{Loss: loss, Corrupt: corrupt, Stall: stall}
					res, tally := runWithTally(t, sts, cfg)

					if !res.Drained {
						t.Fatalf("did not drain: %+v", res)
					}
					for _, s := range sts {
						if res.Delivered[s.ID] != s.Backlog {
							t.Errorf("station %d delivered %d, want %d (duplicates or losses leaked)",
								s.ID, res.Delivered[s.ID], s.Backlog)
						}
					}
					if res.Faults.FramesLost != tally.FramesLost {
						t.Errorf("Result counts %d lost frames, fault model injected %d",
							res.Faults.FramesLost, tally.FramesLost)
					}
					if res.Faults.CRCRejects != tally.CRCRejects {
						t.Errorf("Result counts %d CRC rejects, fault model injected %d",
							res.Faults.CRCRejects, tally.CRCRejects)
					}
					if res.Faults.Stalls != tally.Stalls {
						t.Errorf("Result counts %d stalls, fault model injected %d",
							res.Faults.Stalls, tally.Stalls)
					}

					// Byte-for-byte reproducibility for a fixed seed.
					again, _ := runWithTally(t, sts, cfg)
					if !reflect.DeepEqual(res, again) {
						t.Errorf("identical faulty runs differ:\n  %+v\n  %+v", res, again)
					}
				})
			}
		}
	}
}

// TestFaultSeedChangesOutcome guards against the rolls ignoring the seed.
func TestFaultSeedChangesOutcome(t *testing.T) {
	sts := emuStations(3, 30, 15, 28, 14)
	cfg := emuCfg()
	cfg.Faults = FaultModel{Loss: 0.1, Corrupt: 0.05}
	cfg.Seed = 1
	a, ta := runWithTally(t, sts, cfg)
	cfg.Seed = 2
	b, tb := runWithTally(t, sts, cfg)
	if reflect.DeepEqual(a, b) && reflect.DeepEqual(ta, tb) {
		t.Error("different seeds produced identical fault patterns")
	}
}

// TestFaultLostAcksDeduped drops a large fraction of ACK frames (and the
// backlog reports, which travel as ACK-typed frames). The stations must
// retransmit, the AP must suppress the duplicates, and the delivered count
// must come out exact — not inflated by the retransmissions.
func TestFaultLostAcksDeduped(t *testing.T) {
	sts := emuStations(3, 30, 15, 26)
	cfg := emuCfg()
	cfg.Seed = 3
	cfg.Faults = FaultModel{LossByType: map[frame.Type]float64{frame.TypeAck: 0.4}}
	res, _ := runWithTally(t, sts, cfg)
	if !res.Drained {
		t.Fatalf("did not drain: %+v", res)
	}
	for _, s := range sts {
		if res.Delivered[s.ID] != s.Backlog {
			t.Errorf("station %d delivered %d, want exactly %d", s.ID, res.Delivered[s.ID], s.Backlog)
		}
	}
	if res.Faults.FramesLost == 0 {
		t.Error("no ACKs were lost despite 40% ACK loss")
	}
}

// TestFaultTotalLossPartialResult starves the protocol completely: every
// frame is dropped. The AP must give up gracefully — a partial Result with
// Drained == false and populated failure counters, not an error and not a
// hang.
func TestFaultTotalLossPartialResult(t *testing.T) {
	sts := emuStations(2, 30, 15)
	cfg := emuCfg()
	cfg.Faults = FaultModel{Loss: 1}
	cfg.MaxRounds = 4
	res, err := Run(context.Background(), sts, cfg)
	if err != nil {
		t.Fatalf("total loss should degrade, not error: %v", err)
	}
	if res.Drained {
		t.Error("Drained = true on a dead medium")
	}
	for id, n := range res.Delivered {
		if n != 0 {
			t.Errorf("station %d delivered %d frames over a dead medium", id, n)
		}
	}
	if res.Faults.FramesLost == 0 || res.Faults.TimedOutSlots == 0 || res.Faults.Retries == 0 {
		t.Errorf("failure counters not populated: %+v", res.Faults)
	}
}

// TestZeroFaultCountersStayZero pins the perfect-medium path: no fault
// machinery may fire, and the run must report a full drain.
func TestZeroFaultCountersStayZero(t *testing.T) {
	res, tally := runWithTally(t, emuStations(2, 30, 15, 28), emuCfg())
	if !res.Drained {
		t.Error("perfect-medium run did not drain")
	}
	if res.Faults != (mac.FaultCounters{}) {
		t.Errorf("perfect medium produced fault counters: %+v", res.Faults)
	}
	if tally != (mac.FaultCounters{}) {
		t.Errorf("fault model injected on a perfect medium: %+v", tally)
	}
}

// TestFaultModelValidation rejects out-of-range probabilities up front.
func TestFaultModelValidation(t *testing.T) {
	sts := emuStations(1, 20)
	for _, bad := range []FaultModel{
		{Loss: -0.1},
		{Loss: 1.5},
		{Corrupt: 2},
		{Stall: -1},
		{StallSlots: -3},
		{LossByType: map[frame.Type]float64{frame.TypeAck: 7}},
	} {
		cfg := emuCfg()
		cfg.Faults = bad
		if _, err := Run(context.Background(), sts, cfg); err == nil {
			t.Errorf("fault model %+v accepted", bad)
		}
	}
	bad := emuCfg()
	bad.MaxRetries = -1
	if _, err := Run(context.Background(), sts, bad); err == nil {
		t.Error("negative MaxRetries accepted")
	}
	bad = emuCfg()
	bad.MaxRounds = -1
	if _, err := Run(context.Background(), sts, bad); err == nil {
		t.Error("negative MaxRounds accepted")
	}
}

// TestEncodeKbps pins the trigger-frame rate encoding: nearest-kbit/s
// rounding that never overshoots the achievable rate, with sub-encodable
// rates reported as 0 for the caller to reject.
func TestEncodeKbps(t *testing.T) {
	cases := []struct {
		rate float64
		want uint32
	}{
		{0, 0},
		{499, 0},         // rounds to 0: un-encodable
		{999, 0},         // rounds to 1 but 1000 > 999 would be undecodable
		{1000, 1},        // exact
		{1500, 1},        // rounds to 2 but 2000 > 1500 would be undecodable
		{2400, 2},        // plain round-down
		{6e6, 6000},      // exact multiple
		{5.9996e6, 5999}, // rounds up past the rate: stepped back
	}
	for _, c := range cases {
		if got := encodeKbps(c.rate); got != c.want {
			t.Errorf("encodeKbps(%g) = %d, want %d", c.rate, got, c.want)
		}
	}
}

// TestCommandedRateTooLowErrors: a station so weak its capacity rounds to
// zero kbit/s must surface a scheduling error, not a zero-rate trigger.
func TestCommandedRateTooLowErrors(t *testing.T) {
	sts := []mac.Station{{ID: 1, SNR: 1e-6, Backlog: 1}} // capacity ≈ 29 bit/s
	_, err := Run(context.Background(), sts, emuCfg())
	if err == nil {
		t.Fatal("sub-kbit/s commanded rate accepted")
	}
}

// TestFaultRunStaysConsistentWithRetryKnobs exercises non-default retry
// and round budgets under faults.
func TestFaultRunStaysConsistentWithRetryKnobs(t *testing.T) {
	sts := emuStations(2, 30, 15, 24)
	cfg := emuCfg()
	cfg.Seed = 11
	cfg.Faults = FaultModel{Loss: 0.08, Stall: 0.1, StallSlots: 2}
	cfg.MaxRetries = 5
	res, _ := runWithTally(t, sts, cfg)
	if !res.Drained {
		t.Fatalf("did not drain with MaxRetries=5: %+v", res)
	}
	total := 0
	for _, s := range sts {
		total += res.Delivered[s.ID]
	}
	if total != 6 {
		t.Errorf("delivered %d frames in aggregate, want 6", total)
	}
}
