// Package emu runs the SIC-aware upload MAC as a *live* concurrent system:
// the access point and every station are goroutines exchanging marshalled
// frames over a simulated radio medium, in the style of a real network
// stack (inbox channels, context cancellation, graceful shutdown).
//
// Where package mac advances a single-threaded event loop, emu exercises
// the protocol itself: the AP polls for backlog, computes a schedule
// (package sched), broadcasts it, then fires per-slot trigger frames; the
// addressed stations independently transmit data frames, which the medium
// superposes and hands to the AP's SIC receiver. Virtual time lives in the
// medium and advances per reception, so the run is deterministic despite
// the concurrency — the same topology must reproduce package mac's data
// airtime exactly (see the tests).
package emu

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

// Config parameterises an emulation run.
type Config struct {
	// Channel supplies bandwidth/noise.
	Channel phy.Channel
	// PacketBits is the data frame payload size on the air.
	PacketBits float64
	// Residual is the receiver's true residual-cancellation fraction.
	Residual float64
	// Sched configures the AP's scheduler. Channel/PacketBits are filled
	// from this Config if zero.
	Sched sched.Options
	// Seed drives the fault model's deterministic randomness; runs with
	// the same seed and topology reproduce byte for byte.
	Seed int64
	// Faults configures fault injection on the medium; the zero value is
	// a perfect channel.
	Faults FaultModel
	// MaxRetries bounds how many times the AP re-solicits a slot whose
	// expected transmissions went missing before giving up on the round;
	// 0 means the default of 3.
	MaxRetries int
	// MaxRounds bounds the poll→schedule→trigger rounds; 0 means a
	// backlog-proportional default. When exhausted, Run returns a partial
	// Result with Drained == false rather than an error.
	MaxRounds int

	// faultObserver, if set, receives the fault model's own injection
	// tally when the run ends — a test hook for cross-checking the
	// Result counters against what was actually injected.
	faultObserver func(mac.FaultCounters)
}

// Result summarises an emulation run.
type Result struct {
	// Delivered counts ACKed data frames per station, duplicates excluded.
	Delivered map[uint32]int
	// AirtimeData is the virtual time the medium carried data frames.
	AirtimeData float64
	// AirtimeOverhead is the virtual time spent on backlog polls/reports,
	// timed-out slot waits and retry backoff.
	AirtimeOverhead float64
	// Rounds is the number of poll→schedule→trigger rounds.
	Rounds int
	// DecodeFailures counts frames the AP could not decode (SIC failures
	// and CRC rejects alike).
	DecodeFailures int
	// Faults aggregates the AP's failure/recovery accounting: frames the
	// medium lost, CRC rejects, retry slots, timed-out slots and station
	// stalls observed during the run.
	Faults mac.FaultCounters
	// Drained reports whether every station's backlog emptied. False
	// means the round budget ran out and the Result is partial — the
	// counters above say why.
	Drained bool
}

// transmission is one station's frame on the air, tagged with the slot that
// solicited it.
type transmission struct {
	slot    slotKey
	station uint32
	typ     frame.Type // wire type, for per-type fault rolls
	snr     float64    // received SNR after any commanded power scaling
	rate    float64
	wire    []byte
	lost    bool // dropped by the fault model: occupies air, decodes nothing
}

// slotKey identifies a solicited slot by its global sequence number (the
// Seq field of the trigger frame that opened it). A flat sequence space —
// rather than packed round/slot halves — means retries and very long runs
// can never collide across rounds; the AP guards exhaustion explicitly.
type slotKey uint32

// slotResult is what the medium hands back to the AP for one slot.
type slotResult struct {
	airtime float64
	decoded []*frame.Frame
	failed  []uint32 // transmitted but undecodable (SIC failure or CRC reject)
	lost    []uint32 // uplink frames the fault model dropped in transit
	absent  []uint32 // solicited stations that never transmitted
	crc     int      // how many of failed were CRC rejects
}

// medium owns virtual time and superposes concurrent transmissions.
type medium struct {
	rx     mac.SICReceiver
	faults *faultState // nil on a perfect channel

	mu      sync.Mutex
	clock   float64
	pending map[slotKey]*pendingSlot
}

type pendingSlot struct {
	expected int
	got      []transmission
	absent   []uint32
	done     chan slotResult
}

// expect registers a slot the AP is about to trigger; the returned channel
// yields the slot's outcome once all expected transmissions arrive or are
// reported absent.
func (m *medium) expect(key slotKey, n int) <-chan slotResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := &pendingSlot{expected: n, done: make(chan slotResult, 1)}
	m.pending[key] = ps
	return ps.done
}

// transmit delivers one station's frame into its slot; the completing
// transmission triggers decoding and clock advance. The fault model may
// mark the frame lost (a deep fade: the air is occupied but the AP hears
// nothing) or flip a payload bit so the CRC check rejects it.
func (m *medium) transmit(tx transmission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pending[tx.slot]
	if !ok {
		return fmt.Errorf("emu: transmission for unknown slot %d", tx.slot)
	}
	if m.faults != nil {
		if m.faults.dropFrame(tx.typ, tx.station, uint32(tx.slot)) {
			tx.lost = true
		} else {
			tx.wire = m.faults.corruptWire(tx.wire, tx.station, uint32(tx.slot))
		}
	}
	ps.got = append(ps.got, tx)
	m.resolveLocked(tx.slot, ps)
	return nil
}

// absent records that a solicited station will never transmit in the slot
// (its trigger was lost, or it is stalled); the slot resolves once every
// expected transmitter has either arrived or been declared absent. This is
// emulation machinery, not protocol: it stands in for the AP's carrier
// sense timing out on an idle slot without blocking virtual time.
func (m *medium) absent(key slotKey, station uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pending[key]
	if !ok {
		return fmt.Errorf("emu: absence report for unknown slot %d", key)
	}
	ps.absent = append(ps.absent, station)
	m.resolveLocked(key, ps)
	return nil
}

// resolveLocked decodes and completes the slot once all expected
// transmitters are accounted for. Callers hold m.mu.
func (m *medium) resolveLocked(key slotKey, ps *pendingSlot) {
	if len(ps.got)+len(ps.absent) < ps.expected {
		return
	}
	delete(m.pending, key)

	// Superpose the frames actually on the air. Lost frames occupy airtime
	// (their transmitter cannot know the fade) but contribute no signal at
	// the receiver.
	var arrivals []mac.Arrival
	var heard []transmission
	airtime := 0.0
	for _, g := range ps.got {
		if t := txAirtime(g); t > airtime {
			airtime = t
		}
		if g.lost {
			continue
		}
		arrivals = append(arrivals, mac.Arrival{StationID: g.station, SNR: g.snr, RateBps: g.rate})
		heard = append(heard, g)
	}
	ok2 := m.rx.Decode(arrivals)
	res := slotResult{airtime: airtime, absent: ps.absent}
	for _, g := range ps.got {
		if g.lost {
			res.lost = append(res.lost, g.station)
		}
	}
	for i, g := range heard {
		if !ok2[i] {
			res.failed = append(res.failed, g.station)
			continue
		}
		f, err := frame.Decode(g.wire)
		if err != nil {
			res.failed = append(res.failed, g.station)
			if errors.Is(err, frame.ErrBadChecksum) {
				res.crc++
			}
			continue
		}
		res.decoded = append(res.decoded, f)
	}
	m.clock += airtime
	ps.done <- res
}

// txAirtime is the frame's airtime at its transmit rate.
func txAirtime(tx transmission) float64 {
	if tx.rate <= 0 {
		return math.Inf(1)
	}
	// Payload bits dominate; header overhead is carried in the payload size
	// the station chose.
	return float64(len(tx.wire)*8) / tx.rate
}

// stationActor is one uploading client goroutine.
type stationActor struct {
	id      uint32
	snr     float64
	backlog int

	inbox chan *frame.Frame
	med   *medium
	ch    phy.Channel
	bits  float64
	// seq numbers the head-of-queue frame and advances only on its ACK, so
	// a retransmission (after a failed decode or a lost ACK) reuses the
	// same sequence number and the AP can suppress duplicates.
	seq    uint32
	faults *faultState
	// stallLeft counts remaining frames this station ignores while frozen
	// by an injected stall fault; stallCount totals the stall events, read
	// by Run only after the actor goroutine exits.
	stallLeft  int
	stallCount int
}

// run processes triggers until the context ends or the inbox closes.
func (s *stationActor) run(ctx context.Context, errc chan<- error) {
	for {
		select {
		case <-ctx.Done():
			return
		case f, ok := <-s.inbox:
			if !ok {
				return
			}
			if err := s.handleFrame(f); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}
}

// handleFrame dispatches one received frame, applying stall faults first: a
// frozen station ignores everything, but must still tell the medium that
// its solicited slots stay empty so virtual time can move on.
func (s *stationActor) handleFrame(f *frame.Frame) error {
	if s.stallLeft > 0 {
		s.stallLeft--
		if f.Type == frame.TypePoll {
			return s.med.absent(slotKey(f.Seq), s.id)
		}
		return nil
	}
	switch f.Type {
	case frame.TypeAck:
		// Delivery confirmed: the packet leaves the queue only when the
		// ACK names the head frame, so stale re-ACKs after a lost ACK (and
		// retries after failed SIC decodes) are handled automatically.
		if f.Seq == s.seq && s.backlog > 0 {
			s.backlog--
			s.seq++
		}
		return nil
	case frame.TypePoll:
		if s.faults != nil {
			if n := s.faults.stallFor(s.id, f.Seq); n > 0 {
				s.stallCount++
				s.stallLeft = n - 1 // this trigger is the first missed frame
				return s.med.absent(slotKey(f.Seq), s.id)
			}
		}
		return s.handleTrigger(f)
	}
	return nil
}

// handleTrigger reacts to a per-slot trigger frame: the payload is one
// schedule entry addressed to this station (entry.A), carrying its power
// scale; the trigger's DurationUS field carries the commanded bitrate in
// kbit/s. The station cannot compute its SIC rate itself — it doesn't know
// its partner's SNR — which is exactly why the AP commands it, as an
// 802.11ax trigger frame would.
func (s *stationActor) handleTrigger(f *frame.Frame) error {
	if len(f.Payload) == 0 {
		// Backlog poll: reply with the remaining queue depth in a short
		// report frame through the same slot machinery (count 1).
		return s.sendBacklogReport(f)
	}
	entries, err := frame.DecodeSchedule(f.Payload)
	if err != nil || len(entries) != 1 {
		return fmt.Errorf("emu: station %d: bad trigger: %v", s.id, err)
	}
	e := entries[0]
	if e.A != s.id {
		return nil // trigger addressed to another station
	}
	key := slotKey(f.Seq)
	if s.backlog == 0 {
		// The AP triggered on a stale backlog estimate (its poll or our
		// report was lost). Nothing is queued, so the slot stays empty
		// rather than fabricating a frame past the queue's end.
		return s.med.absent(key, s.id)
	}

	snr := s.snr * e.WeakScale()
	rate := float64(f.DurationUS) * 1e3
	if rate <= 0 {
		return fmt.Errorf("emu: station %d: zero rate commanded", s.id)
	}

	// Size the payload so the whole wire frame (24-byte header + payload +
	// 4-byte CRC) occupies exactly PacketBits on the air.
	data := frame.Frame{
		Type: frame.TypeData, Src: s.id, Dst: 0, Seq: s.seq,
		Payload: make([]byte, int(s.bits/8)-28),
	}
	wire, err := data.Marshal()
	if err != nil {
		return fmt.Errorf("emu: station %d: %w", s.id, err)
	}
	return s.med.transmit(transmission{
		slot: key, station: s.id, typ: frame.TypeData, snr: snr, rate: rate, wire: wire,
	})
}

// sendBacklogReport answers a backlog poll: a small data frame whose
// 4-byte payload is the station's remaining queue depth, sent at the
// station's clean rate.
func (s *stationActor) sendBacklogReport(f *frame.Frame) error {
	key := slotKey(f.Seq)
	payload := []byte{
		byte(s.backlog >> 24), byte(s.backlog >> 16),
		byte(s.backlog >> 8), byte(s.backlog),
	}
	report := frame.Frame{Type: frame.TypeAck, Src: s.id, Dst: 0, Payload: payload}
	wire, err := report.Marshal()
	if err != nil {
		return fmt.Errorf("emu: station %d: report: %w", s.id, err)
	}
	return s.med.transmit(transmission{
		slot: key, station: s.id, typ: frame.TypeAck, snr: s.snr, rate: s.ch.Capacity(s.snr), wire: wire,
	})
}

// Run executes the emulation until every station's backlog drains.
func Run(ctx context.Context, stations []mac.Station, cfg Config) (Result, error) {
	if cfg.Channel.BandwidthHz <= 0 {
		return Result{}, errors.New("emu: Channel is required")
	}
	if cfg.PacketBits < 512 {
		return Result{}, errors.New("emu: PacketBits must be at least 512 (frame header + CRC)")
	}
	if cfg.Residual < 0 || cfg.Residual > 1 {
		return Result{}, errors.New("emu: Residual must be in [0,1]")
	}
	if err := cfg.Faults.validate(); err != nil {
		return Result{}, err
	}
	if cfg.MaxRetries < 0 {
		return Result{}, errors.New("emu: MaxRetries must be non-negative")
	}
	if cfg.MaxRounds < 0 {
		return Result{}, errors.New("emu: MaxRounds must be non-negative")
	}
	opts := cfg.Sched
	if opts.Channel.BandwidthHz <= 0 {
		opts.Channel = cfg.Channel
	}
	if opts.PacketBits <= 0 {
		opts.PacketBits = cfg.PacketBits
	}

	faults := newFaultState(cfg.Faults, cfg.Seed)
	med := &medium{
		rx:      mac.SICReceiver{Channel: cfg.Channel, Residual: cfg.Residual},
		faults:  faults,
		pending: map[slotKey]*pendingSlot{},
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errc := make(chan error, len(stations))
	actors := make(map[uint32]*stationActor, len(stations))
	var wg sync.WaitGroup
	for _, st := range stations {
		if st.ID == 0 || st.ID == frame.Broadcast {
			return Result{}, fmt.Errorf("emu: invalid station id %d", st.ID)
		}
		if _, dup := actors[st.ID]; dup {
			return Result{}, fmt.Errorf("emu: duplicate station id %d", st.ID)
		}
		a := &stationActor{
			id: st.ID, snr: st.SNR, backlog: st.Backlog,
			inbox: make(chan *frame.Frame, 8),
			med:   med, ch: cfg.Channel, bits: cfg.PacketBits,
			faults: faults,
		}
		actors[st.ID] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.run(ctx, errc)
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	res, err := runAP(ctx, stations, actors, med, opts, cfg, errc)
	cancel()
	wg.Wait()
	if err != nil {
		return Result{}, err
	}
	// Stalls are injected station-side and indistinguishable from lost
	// triggers at the AP, so the actors' own counts fill that counter;
	// safe to read now that every actor goroutine has exited.
	for _, a := range actors {
		res.Faults.Stalls += a.stallCount
	}
	if cfg.faultObserver != nil {
		cfg.faultObserver(faults.injected())
	}
	return res, nil
}
