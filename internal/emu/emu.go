// Package emu runs the SIC-aware upload MAC as a *live* concurrent system:
// the access point and every station are goroutines exchanging marshalled
// frames over a simulated radio medium, in the style of a real network
// stack (inbox channels, context cancellation, graceful shutdown).
//
// Where package mac advances a single-threaded event loop, emu exercises
// the protocol itself: the AP polls for backlog, computes a schedule
// (package sched), broadcasts it, then fires per-slot trigger frames; the
// addressed stations independently transmit data frames, which the medium
// superposes and hands to the AP's SIC receiver. Virtual time lives in the
// medium and advances per reception, so the run is deterministic despite
// the concurrency — the same topology must reproduce package mac's data
// airtime exactly (see the tests).
package emu

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

// Config parameterises an emulation run.
type Config struct {
	// Channel supplies bandwidth/noise.
	Channel phy.Channel
	// PacketBits is the data frame payload size on the air.
	PacketBits float64
	// Residual is the receiver's true residual-cancellation fraction.
	Residual float64
	// Sched configures the AP's scheduler. Channel/PacketBits are filled
	// from this Config if zero.
	Sched sched.Options
}

// Result summarises an emulation run.
type Result struct {
	// Delivered counts ACKed data frames per station.
	Delivered map[uint32]int
	// AirtimeData is the virtual time the medium carried data frames.
	AirtimeData float64
	// AirtimeOverhead is the virtual time spent on backlog polls/reports.
	AirtimeOverhead float64
	// Rounds is the number of poll→schedule→trigger rounds.
	Rounds int
	// DecodeFailures counts frames the AP could not decode.
	DecodeFailures int
}

// transmission is one station's frame on the air, tagged with the slot that
// solicited it.
type transmission struct {
	slot    slotKey
	station uint32
	snr     float64 // received SNR after any commanded power scaling
	rate    float64
	wire    []byte
}

// slotKey identifies a triggered slot.
type slotKey struct {
	round, slot int
}

// slotResult is what the medium hands back to the AP for one slot.
type slotResult struct {
	airtime float64
	decoded []*frame.Frame
	failed  []uint32
}

// medium owns virtual time and superposes concurrent transmissions.
type medium struct {
	rx mac.SICReceiver

	mu      sync.Mutex
	clock   float64
	pending map[slotKey]*pendingSlot
}

type pendingSlot struct {
	expected int
	got      []transmission
	done     chan slotResult
}

// expect registers a slot the AP is about to trigger; the returned channel
// yields the slot's outcome once all expected transmissions arrive.
func (m *medium) expect(key slotKey, n int) <-chan slotResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := &pendingSlot{expected: n, done: make(chan slotResult, 1)}
	m.pending[key] = ps
	return ps.done
}

// transmit delivers one station's frame into its slot; the completing
// transmission triggers decoding and clock advance.
func (m *medium) transmit(tx transmission) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pending[tx.slot]
	if !ok {
		return fmt.Errorf("emu: transmission for unknown slot %+v", tx.slot)
	}
	ps.got = append(ps.got, tx)
	if len(ps.got) < ps.expected {
		return nil
	}
	delete(m.pending, tx.slot)

	// All transmitters of the slot are on the air: superpose and decode.
	arrivals := make([]mac.Arrival, len(ps.got))
	airtime := 0.0
	for i, g := range ps.got {
		arrivals[i] = mac.Arrival{StationID: g.station, SNR: g.snr, RateBps: g.rate}
		if t := txAirtime(g); t > airtime {
			airtime = t
		}
	}
	ok2 := m.rx.Decode(arrivals)
	res := slotResult{airtime: airtime}
	for i, g := range ps.got {
		if !ok2[i] {
			res.failed = append(res.failed, g.station)
			continue
		}
		f, err := frame.Decode(g.wire)
		if err != nil {
			res.failed = append(res.failed, g.station)
			continue
		}
		res.decoded = append(res.decoded, f)
	}
	m.clock += airtime
	ps.done <- res
	return nil
}

// txAirtime is the frame's airtime at its transmit rate.
func txAirtime(tx transmission) float64 {
	if tx.rate <= 0 {
		return math.Inf(1)
	}
	// Payload bits dominate; header overhead is carried in the payload size
	// the station chose.
	return float64(len(tx.wire)*8) / tx.rate
}

// stationActor is one uploading client goroutine.
type stationActor struct {
	id      uint32
	snr     float64
	backlog int

	inbox chan *frame.Frame
	med   *medium
	ch    phy.Channel
	bits  float64
	seq   uint32
}

// run processes triggers until the context ends or the inbox closes.
func (s *stationActor) run(ctx context.Context, errc chan<- error) {
	for {
		select {
		case <-ctx.Done():
			return
		case f, ok := <-s.inbox:
			if !ok {
				return
			}
			if f.Type == frame.TypeAck {
				// Delivery confirmed: the packet leaves the queue only now,
				// so a failed SIC decode is retried automatically.
				if s.backlog > 0 {
					s.backlog--
				}
				continue
			}
			if f.Type != frame.TypePoll {
				continue
			}
			if err := s.handleTrigger(f); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}
}

// handleTrigger reacts to a per-slot trigger frame: the payload is one
// schedule entry addressed to this station (entry.A), carrying its power
// scale; the trigger's DurationUS field carries the commanded bitrate in
// kbit/s. The station cannot compute its SIC rate itself — it doesn't know
// its partner's SNR — which is exactly why the AP commands it, as an
// 802.11ax trigger frame would.
func (s *stationActor) handleTrigger(f *frame.Frame) error {
	if len(f.Payload) == 0 {
		// Backlog poll: reply with the remaining queue depth in a short
		// report frame through the same slot machinery (count 1).
		return s.sendBacklogReport(f)
	}
	entries, err := frame.DecodeSchedule(f.Payload)
	if err != nil || len(entries) != 1 {
		return fmt.Errorf("emu: station %d: bad trigger: %v", s.id, err)
	}
	e := entries[0]
	if e.A != s.id {
		return nil // trigger addressed to another station
	}
	key := slotKey{round: int(f.Seq >> 16), slot: int(f.Seq & 0xffff)}

	snr := s.snr * e.WeakScale()
	rate := float64(f.DurationUS) * 1e3
	if rate <= 0 {
		return fmt.Errorf("emu: station %d: zero rate commanded", s.id)
	}

	// Size the payload so the whole wire frame (24-byte header + payload +
	// 4-byte CRC) occupies exactly PacketBits on the air.
	data := frame.Frame{
		Type: frame.TypeData, Src: s.id, Dst: 0, Seq: s.seq,
		Payload: make([]byte, int(s.bits/8)-28),
	}
	wire, err := data.Marshal()
	if err != nil {
		return fmt.Errorf("emu: station %d: %w", s.id, err)
	}
	s.seq++
	return s.med.transmit(transmission{
		slot: key, station: s.id, snr: snr, rate: rate, wire: wire,
	})
}

// sendBacklogReport answers a backlog poll: a small data frame whose
// 4-byte payload is the station's remaining queue depth, sent at the
// station's clean rate.
func (s *stationActor) sendBacklogReport(f *frame.Frame) error {
	key := slotKey{round: int(f.Seq >> 16), slot: int(f.Seq & 0xffff)}
	payload := []byte{
		byte(s.backlog >> 24), byte(s.backlog >> 16),
		byte(s.backlog >> 8), byte(s.backlog),
	}
	report := frame.Frame{Type: frame.TypeAck, Src: s.id, Dst: 0, Payload: payload}
	wire, err := report.Marshal()
	if err != nil {
		return fmt.Errorf("emu: station %d: report: %w", s.id, err)
	}
	return s.med.transmit(transmission{
		slot: key, station: s.id, snr: s.snr, rate: s.ch.Capacity(s.snr), wire: wire,
	})
}

// Run executes the emulation until every station's backlog drains.
func Run(ctx context.Context, stations []mac.Station, cfg Config) (Result, error) {
	if cfg.Channel.BandwidthHz <= 0 {
		return Result{}, errors.New("emu: Channel is required")
	}
	if cfg.PacketBits < 512 {
		return Result{}, errors.New("emu: PacketBits must be at least 512 (frame header + CRC)")
	}
	if cfg.Residual < 0 || cfg.Residual > 1 {
		return Result{}, errors.New("emu: Residual must be in [0,1]")
	}
	opts := cfg.Sched
	if opts.Channel.BandwidthHz <= 0 {
		opts.Channel = cfg.Channel
	}
	if opts.PacketBits <= 0 {
		opts.PacketBits = cfg.PacketBits
	}

	med := &medium{
		rx:      mac.SICReceiver{Channel: cfg.Channel, Residual: cfg.Residual},
		pending: map[slotKey]*pendingSlot{},
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errc := make(chan error, len(stations))
	actors := make(map[uint32]*stationActor, len(stations))
	var wg sync.WaitGroup
	for _, st := range stations {
		if st.ID == 0 || st.ID == frame.Broadcast {
			return Result{}, fmt.Errorf("emu: invalid station id %d", st.ID)
		}
		if _, dup := actors[st.ID]; dup {
			return Result{}, fmt.Errorf("emu: duplicate station id %d", st.ID)
		}
		a := &stationActor{
			id: st.ID, snr: st.SNR, backlog: st.Backlog,
			inbox: make(chan *frame.Frame, 8),
			med:   med, ch: cfg.Channel, bits: cfg.PacketBits,
		}
		actors[st.ID] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.run(ctx, errc)
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	res, err := runAP(ctx, stations, actors, med, opts, cfg, errc)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
