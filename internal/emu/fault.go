package emu

import (
	"fmt"
	"sync"

	"repro/internal/frame"
	"repro/internal/mac"
)

// FaultModel configures deterministic fault injection on the emulated radio
// medium. The zero value injects nothing and leaves the medium perfect.
//
// Every fault decision is a pure function of (Config.Seed, frame identity,
// slot sequence), never of goroutine scheduling or draw order, so a faulty
// run is byte-for-byte reproducible for a fixed seed. Because the slot
// sequence number participates in each roll, a retransmission of the same
// frame in a later slot re-rolls its fate — a lossy medium delays frames,
// it does not censor them forever.
type FaultModel struct {
	// Loss is the default probability in [0,1] that a frame is dropped in
	// transit, in either direction.
	Loss float64
	// LossByType overrides Loss for specific frame types, e.g. dropping
	// only ACKs to exercise the duplicate-suppression path. Station
	// backlog reports travel as frame.TypeAck frames.
	LossByType map[frame.Type]float64
	// Corrupt is the probability in [0,1] that a surviving uplink frame
	// has one payload bit flipped on the air, exercising the CRC-32
	// rejection path in package frame.
	Corrupt float64
	// Stall is the per-trigger probability in [0,1] that a station
	// freezes: it ignores the next StallSlots frames (triggers, polls and
	// ACKs alike) before recovering.
	Stall float64
	// StallSlots is the length of a stall in received frames; 0 means the
	// default of 3.
	StallSlots int
}

// enabled reports whether any fault can ever fire.
func (f FaultModel) enabled() bool {
	if f.Loss > 0 || f.Corrupt > 0 || f.Stall > 0 {
		return true
	}
	for _, p := range f.LossByType {
		if p > 0 {
			return true
		}
	}
	return false
}

func (f FaultModel) validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("emu: fault probability %s = %v outside [0,1]", name, p)
		}
		return nil
	}
	if err := check("Loss", f.Loss); err != nil {
		return err
	}
	if err := check("Corrupt", f.Corrupt); err != nil {
		return err
	}
	if err := check("Stall", f.Stall); err != nil {
		return err
	}
	for t, p := range f.LossByType {
		if err := check(fmt.Sprintf("LossByType[%v]", t), p); err != nil {
			return err
		}
	}
	if f.StallSlots < 0 {
		return fmt.Errorf("emu: StallSlots must be non-negative, got %d", f.StallSlots)
	}
	return nil
}

// lossFor returns the drop probability for a frame type.
func (f FaultModel) lossFor(t frame.Type) float64 {
	if p, ok := f.LossByType[t]; ok {
		return p
	}
	return f.Loss
}

// Roll domains keep the per-fault hash streams independent: the same frame
// identity must not correlate its loss, corruption and stall fates.
const (
	rollLoss uint64 = iota + 1
	rollCorrupt
	rollCorruptBit
	rollStall
)

// faultState binds a FaultModel to a run's seed and tallies every injected
// fault. The tally is kept independently of the Result counters assembled
// by the AP loop, so tests can cross-check the two accountings.
type faultState struct {
	model FaultModel
	seed  uint64

	mu    sync.Mutex
	tally mac.FaultCounters
}

func newFaultState(model FaultModel, seed int64) *faultState {
	if !model.enabled() {
		return nil
	}
	return &faultState{model: model, seed: uint64(seed)}
}

// splitmix64 is the finalizer from Vigna's SplitMix64: a cheap, strong
// bit mixer used to turn (seed, identity) tuples into uniform variates.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// raw hashes a fault domain plus a frame identity into 64 mixed bits.
func (fs *faultState) raw(domain uint64, typ frame.Type, station, seq uint32) uint64 {
	x := splitmix64(fs.seed ^ domain*0xA24BAED4963EE407)
	x = splitmix64(x ^ uint64(typ)<<32 ^ uint64(station))
	return splitmix64(x ^ uint64(seq))
}

// roll maps an identity to a uniform variate in [0,1).
func (fs *faultState) roll(domain uint64, typ frame.Type, station, seq uint32) float64 {
	return float64(fs.raw(domain, typ, station, seq)>>11) / (1 << 53)
}

// dropFrame decides whether a frame addressed to (or sent by) station is
// lost in transit. seq is the slot sequence the frame belongs to — for
// downlink polls/triggers that is the frame's own Seq, for ACKs and uplink
// frames the caller passes the soliciting slot's sequence so retransmitted
// frames re-roll.
func (fs *faultState) dropFrame(typ frame.Type, station, seq uint32) bool {
	p := fs.model.lossFor(typ)
	if p <= 0 || fs.roll(rollLoss, typ, station, seq) >= p {
		return false
	}
	fs.mu.Lock()
	fs.tally.FramesLost++
	fs.mu.Unlock()
	return true
}

// corruptWire flips one payload bit of the marshalled frame with
// probability Corrupt and returns the (possibly new) buffer. Only payload
// bits are touched, so the damage is always caught by the frame trailer's
// CRC-32 rather than mutating header fields into a differently-framed
// parse error.
func (fs *faultState) corruptWire(wire []byte, station, seq uint32) []byte {
	const headerLen, trailerLen = 24, 4
	payloadBits := (len(wire) - headerLen - trailerLen) * 8
	if fs.model.Corrupt <= 0 || payloadBits <= 0 {
		return wire
	}
	if fs.roll(rollCorrupt, frame.TypeData, station, seq) >= fs.model.Corrupt {
		return wire
	}
	bit := int(fs.raw(rollCorruptBit, frame.TypeData, station, seq) % uint64(payloadBits))
	out := make([]byte, len(wire))
	copy(out, wire)
	out[headerLen+bit/8] ^= 1 << (bit % 8)
	fs.mu.Lock()
	fs.tally.CRCRejects++
	fs.mu.Unlock()
	return out
}

// stallFor decides whether the trigger identified by seq freezes the
// station, returning the stall length in frames (0 = no stall).
func (fs *faultState) stallFor(station, seq uint32) int {
	if fs.model.Stall <= 0 || fs.roll(rollStall, frame.TypePoll, station, seq) >= fs.model.Stall {
		return 0
	}
	fs.mu.Lock()
	fs.tally.Stalls++
	fs.mu.Unlock()
	if fs.model.StallSlots > 0 {
		return fs.model.StallSlots
	}
	return 3
}

// injected snapshots the tally of faults the model has fired so far.
func (fs *faultState) injected() mac.FaultCounters {
	if fs == nil {
		return mac.FaultCounters{}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tally
}
