package emu

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

// plannedTx is one transmitter the AP solicits in a slot: the commanded
// power scale and bitrate.
type plannedTx struct {
	station uint32
	scale   float64
	rate    float64
	peer    uint32
	sic     bool
}

// runAP drives the protocol round by round:
//
//  1. poll every station for its backlog (short report frames),
//  2. compute the SIC-aware schedule over the stations that reported
//     pending traffic,
//  3. fire per-slot trigger frames, collect the medium's decode results,
//  4. ACK delivered frames (stations decrement their queues only on ACK,
//     so retries after failed SIC decodes are automatic).
//
// The loop ends when every station reports an empty queue.
func runAP(ctx context.Context, stations []mac.Station, actors map[uint32]*stationActor,
	med *medium, opts sched.Options, cfg Config, errc <-chan error) (Result, error) {

	res := Result{Delivered: map[uint32]int{}}
	var order []uint32
	snrOf := map[uint32]float64{}
	totalBacklog := 0
	for _, st := range stations {
		order = append(order, st.ID)
		snrOf[st.ID] = st.SNR
		totalBacklog += st.Backlog
	}
	failed := map[uint32]bool{}
	maxRounds := 4*totalBacklog + 16

	slotSeq := func(round, slot int) uint32 { return uint32(round)<<16 | uint32(slot&0xffff) }

	// deliver pushes a frame into a station's inbox without deadlocking on
	// teardown.
	deliver := func(id uint32, f *frame.Frame) error {
		select {
		case actors[id].inbox <- f:
			return nil
		case err := <-errc:
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// execSlot triggers the planned transmitters and waits for the medium;
	// data=false marks poll/report slots whose airtime is overhead.
	execSlot := func(round, slot int, txs []plannedTx, data bool) (*slotResult, error) {
		key := slotKey{round: round, slot: slot}
		done := med.expect(key, len(txs))
		for _, tx := range txs {
			var payload []byte
			if data {
				var err error
				payload, err = frame.MarshalSchedule([]frame.ScheduleEntry{{
					A:               tx.station,
					B:               tx.peer,
					Concurrent:      tx.sic,
					WeakScaleMicros: frame.ScaleToMicros(tx.scale),
				}})
				if err != nil {
					return nil, fmt.Errorf("emu: trigger payload: %w", err)
				}
			}
			trig := &frame.Frame{
				Type: frame.TypePoll, Src: 0, Dst: tx.station,
				Seq:        slotSeq(round, slot),
				DurationUS: uint32(tx.rate / 1e3), // commanded rate, kbit/s
				Payload:    payload,
			}
			if err := deliver(tx.station, trig); err != nil {
				return nil, err
			}
		}
		select {
		case r := <-done:
			if data {
				res.AirtimeData += r.airtime
			} else {
				res.AirtimeOverhead += r.airtime
			}
			return &r, nil
		case err := <-errc:
			return nil, err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// ackDelivered confirms a decoded data frame to its sender and updates
	// the delivery accounting.
	ackDelivered := func(f *frame.Frame) error {
		res.Delivered[f.Src]++
		delete(failed, f.Src)
		ack := &frame.Frame{Type: frame.TypeAck, Src: 0, Dst: f.Src, Seq: f.Seq}
		return deliver(f.Src, ack)
	}

	// pollBacklogs queries every station (one report slot each) and returns
	// the pending queue depths.
	pollBacklogs := func(round int) (map[uint32]int, error) {
		backlog := map[uint32]int{}
		slot := 10000 // poll slots live in their own index space per round
		for _, id := range order {
			tx := plannedTx{station: id, scale: 1, rate: cfg.Channel.Capacity(snrOf[id]), peer: frame.Broadcast}
			r, err := execSlot(round, slot, []plannedTx{tx}, false)
			if err != nil {
				return nil, err
			}
			slot++
			if len(r.decoded) != 1 || len(r.decoded[0].Payload) != 4 {
				return nil, fmt.Errorf("emu: bad backlog report from %d", id)
			}
			backlog[id] = int(binary.BigEndian.Uint32(r.decoded[0].Payload))
		}
		return backlog, nil
	}

	round := 0
	for {
		round++
		if round > maxRounds {
			return Result{}, fmt.Errorf("emu: did not drain after %d rounds", maxRounds)
		}

		backlog, err := pollBacklogs(round)
		if err != nil {
			return Result{}, err
		}
		var pendingIDs []uint32
		for _, id := range order {
			if backlog[id] > 0 {
				pendingIDs = append(pendingIDs, id)
			}
		}
		if len(pendingIDs) == 0 {
			break
		}
		res.Rounds++
		slot := 0

		runSolo := func(id uint32) error {
			tx := plannedTx{station: id, scale: 1, rate: cfg.Channel.Capacity(snrOf[id]), peer: frame.Broadcast}
			r, err := execSlot(round, slot, []plannedTx{tx}, true)
			if err != nil {
				return err
			}
			slot++
			for _, f := range r.decoded {
				if err := ackDelivered(f); err != nil {
					return err
				}
			}
			for _, fid := range r.failed {
				res.DecodeFailures++
				failed[fid] = true
			}
			return nil
		}

		// ARQ recovery: last round's failures transmit alone first.
		var schedIDs []uint32
		for _, id := range pendingIDs {
			if failed[id] {
				if err := runSolo(id); err != nil {
					return Result{}, err
				}
				continue
			}
			schedIDs = append(schedIDs, id)
		}
		if len(schedIDs) == 0 {
			continue
		}

		clients := make([]sched.Client, len(schedIDs))
		for i, id := range schedIDs {
			clients[i] = sched.Client{ID: fmt.Sprint(id), SNR: snrOf[id]}
		}
		schedule, err := sched.New(clients, opts)
		if err != nil {
			return Result{}, fmt.Errorf("emu: round %d: %w", round, err)
		}

		for _, sl := range schedule.Slots {
			switch sl.Mode {
			case sched.ModeSolo:
				if err := runSolo(schedIDs[sl.A]); err != nil {
					return Result{}, err
				}
			case sched.ModeSerial:
				for _, k := range []int{sl.A, sl.B} {
					if err := runSolo(schedIDs[k]); err != nil {
						return Result{}, err
					}
				}
			case sched.ModeSIC:
				idA, idB := schedIDs[sl.A], schedIDs[sl.B]
				strong, weak := idA, idB
				if snrOf[idB] > snrOf[idA] {
					strong, weak = idB, idA
				}
				// Plan with the scale as the station will actually apply it
				// after wire quantisation, or the commanded rates would
				// overshoot the achieved SINRs by a rounding hair.
				scaleQ := float64(frame.ScaleToMicros(sl.WeakScale)) / 1e6
				weakSNR := snrOf[weak] * scaleQ
				strongRate := cfg.Channel.Capacity(phy.SINR(snrOf[strong], weakSNR))
				weakRate := cfg.Channel.Capacity(phy.SINR(weakSNR, opts.Residual*snrOf[strong]))
				txs := []plannedTx{
					{station: strong, scale: 1, rate: strongRate, peer: weak, sic: true},
					{station: weak, scale: scaleQ, rate: weakRate, peer: strong, sic: true},
				}
				r, err := execSlot(round, slot, txs, true)
				if err != nil {
					return Result{}, err
				}
				slot++
				for _, f := range r.decoded {
					if err := ackDelivered(f); err != nil {
						return Result{}, err
					}
				}
				for _, fid := range r.failed {
					res.DecodeFailures++
					failed[fid] = true
				}
			}
		}
	}
	return res, nil
}
