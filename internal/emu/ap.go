package emu

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

// plannedTx is one transmitter the AP solicits in a slot: the commanded
// power scale and bitrate. The trigger frame carries the rate in its
// DurationUS field, rounded to kbit/s — see execSlot.
type plannedTx struct {
	station uint32
	scale   float64
	rate    float64
	peer    uint32
	sic     bool
}

// reportBits is the wire size of a 4-byte backlog report frame:
// 24-byte header + 4-byte payload + 4-byte CRC.
const reportBits = (24 + 4 + 4) * 8

// encodeKbps encodes a commanded bitrate for a trigger frame's DurationUS
// field, which poll/trigger frames overload to carry kbit/s instead of
// microseconds. The rate is rounded to the nearest kbit/s, then stepped
// down one unit if rounding overshot the planned rate — a commanded rate
// above the link's achievable capacity would be undecodable by
// construction. Returns 0 for rates too low to encode; callers must treat
// that as an error, not command a zero rate.
func encodeKbps(rate float64) uint32 {
	kbps := uint32(math.Round(rate / 1e3))
	if kbps > 0 && float64(kbps)*1e3 > rate {
		kbps--
	}
	return kbps
}

// defaultMaxRetries bounds in-round slot re-solicitations when
// Config.MaxRetries is zero.
const defaultMaxRetries = 3

// runAP drives the protocol round by round:
//
//  1. poll every station for its backlog (short report frames),
//  2. compute the SIC-aware schedule over the stations that reported
//     pending traffic,
//  3. fire per-slot trigger frames, collect the medium's decode results,
//  4. ACK delivered frames (stations decrement their queues only on the
//     matching ACK, so retries after failed SIC decodes or lost ACKs are
//     automatic and duplicates are suppressed by sequence number).
//
// Under fault injection the loop is hardened: slots that resolve with
// missing transmitters charge the waited-out slot time to overhead and are
// re-solicited with bounded, backed-off retries; unanswered backlog polls
// fall back to the last known queue depth; and when the round budget is
// exhausted the AP returns the partial Result (Drained == false) with its
// failure counters instead of an opaque error.
//
// The loop ends when every station reports an empty queue.
func runAP(ctx context.Context, stations []mac.Station, actors map[uint32]*stationActor,
	med *medium, opts sched.Options, cfg Config, errc <-chan error) (Result, error) {

	res := Result{Delivered: map[uint32]int{}}
	var order []uint32
	snrOf := map[uint32]float64{}
	// lastKnown starts from the admitted queue depths and is refreshed by
	// every successful backlog report; it is the AP's fallback when a poll
	// goes unanswered past the retry budget.
	lastKnown := map[uint32]int{}
	totalBacklog := 0
	for _, st := range stations {
		order = append(order, st.ID)
		snrOf[st.ID] = st.SNR
		lastKnown[st.ID] = st.Backlog
		totalBacklog += st.Backlog
	}
	failed := map[uint32]bool{}
	// nextFrame is the next expected data-frame sequence number per
	// station; decoded frames below it are retransmissions whose ACK was
	// lost — re-ACKed but not re-counted.
	nextFrame := map[uint32]uint32{}
	maxRounds := 4*totalBacklog + 16
	if cfg.MaxRounds > 0 {
		maxRounds = cfg.MaxRounds
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = defaultMaxRetries
	}

	// Slots draw from a single flat 32-bit sequence space — one number per
	// solicitation attempt, never reused — so sequence numbers cannot
	// collide across rounds or retries. Exhaustion is guarded explicitly
	// rather than silently wrapping.
	slotSeq := uint32(0)
	nextSlotSeq := func() (uint32, error) {
		if slotSeq == math.MaxUint32 {
			return 0, fmt.Errorf("emu: slot sequence space exhausted after %d slots", slotSeq)
		}
		slotSeq++
		return slotSeq, nil
	}

	// deliver pushes a frame into a station's inbox without deadlocking on
	// teardown. The fault model may drop the frame in transit: a lost
	// poll/trigger leaves its slot empty (the medium is told the station
	// will not show), a lost ACK is simply gone — the station re-reports
	// its backlog and retransmits, and duplicate suppression absorbs it.
	// salt is the soliciting slot's sequence number, so a re-sent ACK for
	// the same data frame re-rolls its fate.
	deliver := func(id uint32, f *frame.Frame, salt uint32) error {
		if med.faults != nil && med.faults.dropFrame(f.Type, id, salt) {
			res.Faults.FramesLost++
			if f.Type == frame.TypePoll {
				return med.absent(slotKey(f.Seq), id)
			}
			return nil
		}
		select {
		case actors[id].inbox <- f:
			return nil
		case err := <-errc:
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// plannedAirtime is how long the slot is scheduled to occupy the
	// medium: the slowest planned transmitter's full frame. The AP charges
	// this (minus whatever actually flew) when a slot times out.
	plannedAirtime := func(txs []plannedTx, data bool) float64 {
		bits := cfg.PacketBits
		if !data {
			bits = reportBits
		}
		longest := 0.0
		for _, tx := range txs {
			kbps := encodeKbps(tx.rate)
			if kbps == 0 {
				continue
			}
			if t := bits / (float64(kbps) * 1e3); t > longest {
				longest = t
			}
		}
		return longest
	}

	// execSlot triggers the planned transmitters and waits for the medium;
	// data=false marks poll/report slots whose airtime is overhead.
	execSlot := func(seq uint32, txs []plannedTx, data bool) (*slotResult, error) {
		key := slotKey(seq)
		done := med.expect(key, len(txs))
		for _, tx := range txs {
			var payload []byte
			if data {
				var err error
				payload, err = frame.MarshalSchedule([]frame.ScheduleEntry{{
					A:               tx.station,
					B:               tx.peer,
					Concurrent:      tx.sic,
					WeakScaleMicros: frame.ScaleToMicros(tx.scale),
				}})
				if err != nil {
					return nil, fmt.Errorf("emu: trigger payload: %w", err)
				}
			}
			// DurationUS is overloaded on trigger frames: it carries the
			// commanded bitrate in kbit/s (see encodeKbps). A rate too low
			// to encode is a scheduling bug, not a frame to silently
			// command at zero.
			kbps := encodeKbps(tx.rate)
			if kbps == 0 {
				return nil, fmt.Errorf("emu: commanded rate %g bit/s for station %d rounds to zero kbit/s on the wire",
					tx.rate, tx.station)
			}
			trig := &frame.Frame{
				Type: frame.TypePoll, Src: 0, Dst: tx.station,
				Seq:        seq,
				DurationUS: kbps,
				Payload:    payload,
			}
			if err := deliver(tx.station, trig, seq); err != nil {
				return nil, err
			}
		}
		select {
		case r := <-done:
			if data {
				res.AirtimeData += r.airtime
			} else {
				res.AirtimeOverhead += r.airtime
			}
			return &r, nil
		case err := <-errc:
			return nil, err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// runTxs solicits txs in one slot and re-solicits transmitters that
	// went missing — lost trigger, lost uplink frame, stalled station —
	// up to maxRetries times with a linear virtual-time backoff. Overhead
	// slots also retry undecodable (corrupted) reports; data-slot decode
	// failures are left to the round-level ARQ path instead, because
	// re-running the same SIC slot at the same rates would fail again.
	runTxs := func(txs []plannedTx, data bool, onDecoded func(*frame.Frame, uint32) error) error {
		remaining := txs
		for attempt := 0; ; attempt++ {
			seq, err := nextSlotSeq()
			if err != nil {
				return err
			}
			r, err := execSlot(seq, remaining, data)
			if err != nil {
				return err
			}
			res.Faults.FramesLost += len(r.lost)
			res.Faults.CRCRejects += r.crc
			for _, f := range r.decoded {
				if err := onDecoded(f, seq); err != nil {
					return err
				}
			}
			retry := map[uint32]bool{}
			for _, id := range r.lost {
				retry[id] = true
			}
			for _, id := range r.absent {
				retry[id] = true
			}
			for _, id := range r.failed {
				res.DecodeFailures++
				if data {
					failed[id] = true
				} else {
					retry[id] = true
				}
			}
			if len(retry) == 0 {
				return nil
			}
			// The AP waited out the slot's scheduled duration before
			// declaring the timeout; charge the idle remainder.
			res.Faults.TimedOutSlots++
			if planned := plannedAirtime(remaining, data); planned > r.airtime {
				res.AirtimeOverhead += planned - r.airtime
			}
			if attempt >= maxRetries {
				return nil // give up; the next backlog poll tries again
			}
			var next []plannedTx
			for _, tx := range remaining {
				if retry[tx.station] {
					next = append(next, tx)
				}
			}
			remaining = next
			res.Faults.Retries++
			// Linear backoff in units of the retried slot's length.
			res.AirtimeOverhead += plannedAirtime(remaining, data) * float64(attempt+1)
		}
	}

	// dataDecoded confirms a decoded data frame to its sender and updates
	// the delivery accounting, suppressing duplicates by sequence number.
	dataDecoded := func(f *frame.Frame, slot uint32) error {
		delete(failed, f.Src)
		if f.Seq == nextFrame[f.Src] {
			nextFrame[f.Src]++
			res.Delivered[f.Src]++
		}
		ack := &frame.Frame{Type: frame.TypeAck, Src: 0, Dst: f.Src, Seq: f.Seq}
		return deliver(f.Src, ack, slot)
	}

	// pollBacklogs queries every station (one report slot each) and returns
	// the pending queue depths; a station that stays silent through the
	// retry budget is assumed to hold its last reported backlog.
	pollBacklogs := func() (map[uint32]int, error) {
		backlog := map[uint32]int{}
		for _, id := range order {
			tx := plannedTx{station: id, scale: 1, rate: cfg.Channel.Capacity(snrOf[id]), peer: frame.Broadcast}
			depth := -1
			err := runTxs([]plannedTx{tx}, false, func(f *frame.Frame, _ uint32) error {
				if len(f.Payload) != 4 {
					return fmt.Errorf("emu: bad backlog report from %d", id)
				}
				depth = int(binary.BigEndian.Uint32(f.Payload))
				return nil
			})
			if err != nil {
				return nil, err
			}
			if depth >= 0 {
				lastKnown[id] = depth
			}
			backlog[id] = lastKnown[id]
		}
		return backlog, nil
	}

	round := 0
	for {
		round++
		if round > maxRounds {
			// Round budget exhausted: degrade gracefully. The partial
			// Result carries the delivery and failure accounting so the
			// caller can see what drained and why the rest did not.
			return res, nil
		}

		backlog, err := pollBacklogs()
		if err != nil {
			return Result{}, err
		}
		var pendingIDs []uint32
		for _, id := range order {
			if backlog[id] > 0 {
				pendingIDs = append(pendingIDs, id)
			}
		}
		if len(pendingIDs) == 0 {
			break
		}
		res.Rounds++

		runSolo := func(id uint32) error {
			tx := plannedTx{station: id, scale: 1, rate: cfg.Channel.Capacity(snrOf[id]), peer: frame.Broadcast}
			return runTxs([]plannedTx{tx}, true, dataDecoded)
		}

		// ARQ recovery: last round's failures transmit alone first.
		var schedIDs []uint32
		for _, id := range pendingIDs {
			if failed[id] {
				if err := runSolo(id); err != nil {
					return Result{}, err
				}
				continue
			}
			schedIDs = append(schedIDs, id)
		}
		if len(schedIDs) == 0 {
			continue
		}

		clients := make([]sched.Client, len(schedIDs))
		for i, id := range schedIDs {
			clients[i] = sched.Client{ID: fmt.Sprint(id), SNR: snrOf[id]}
		}
		schedule, err := sched.New(clients, opts)
		if err != nil {
			return Result{}, fmt.Errorf("emu: round %d: %w", round, err)
		}

		for _, sl := range schedule.Slots {
			switch sl.Mode {
			case sched.ModeSolo:
				if err := runSolo(schedIDs[sl.A]); err != nil {
					return Result{}, err
				}
			case sched.ModeSerial:
				for _, k := range []int{sl.A, sl.B} {
					if err := runSolo(schedIDs[k]); err != nil {
						return Result{}, err
					}
				}
			case sched.ModeSIC:
				idA, idB := schedIDs[sl.A], schedIDs[sl.B]
				strong, weak := idA, idB
				if snrOf[idB] > snrOf[idA] {
					strong, weak = idB, idA
				}
				// Plan with the scale as the station will actually apply it
				// after wire quantisation, or the commanded rates would
				// overshoot the achieved SINRs by a rounding hair.
				scaleQ := float64(frame.ScaleToMicros(sl.WeakScale)) / 1e6
				weakSNR := snrOf[weak] * scaleQ
				strongRate := cfg.Channel.Capacity(phy.SINR(snrOf[strong], weakSNR))
				weakRate := cfg.Channel.Capacity(phy.SINR(weakSNR, opts.Residual*snrOf[strong]))
				txs := []plannedTx{
					{station: strong, scale: 1, rate: strongRate, peer: weak, sic: true},
					{station: weak, scale: scaleQ, rate: weakRate, peer: strong, sic: true},
				}
				if err := runTxs(txs, true, dataDecoded); err != nil {
					return Result{}, err
				}
			}
		}
	}
	res.Drained = true
	return res, nil
}
