package emu

import (
	"sync/atomic"

	"repro/internal/frame"
	"repro/internal/mac"
)

// WireChaos applies the emulator's deterministic fault model to raw
// datagrams instead of MAC frames. It is the bridge between the fault
// machinery of this package and network-facing components (the live
// scheduling daemon's chaos harness): every decision is a pure function of
// (seed, station, sequence), so a chaotic run against a live server
// reproduces byte for byte for a fixed seed, regardless of goroutine or
// packet timing.
//
// Only the Loss, Corrupt, Stall and StallSlots fields of the FaultModel are
// consulted; LossByType does not apply to untyped datagrams.
//
// On top of the probabilistic model, WireChaos carries an asymmetric
// partition switch: SetPartition(dir) makes every datagram travelling in
// dir vanish deterministically until ClearPartition, while the opposite
// direction stays governed by the model alone. This is the "one-way-deaf
// node" failure — it hears you, you never hear it — that health probers
// and hedged requests exist to mask. Partition drops are tallied
// separately from the model's Injected counters so the probabilistic tally
// stays a pure function of the seed.
type WireChaos struct {
	fs *faultState // nil when the model injects nothing

	// partMask holds the Dir bits currently partitioned; partDrops counts
	// datagrams the partition swallowed.
	partMask  atomic.Uint32
	partDrops atomic.Int64
}

// Dir labels a datagram's direction for asymmetric partitions. The names
// are relative to the component under test: DirIn is traffic it receives,
// DirOut traffic it sends.
type Dir uint32

const (
	DirIn Dir = 1 << iota
	DirOut
)

// NewWireChaos validates the model and binds it to a seed.
func NewWireChaos(model FaultModel, seed int64) (*WireChaos, error) {
	if err := model.validate(); err != nil {
		return nil, err
	}
	return &WireChaos{fs: newFaultState(model, seed)}, nil
}

// SetPartition starts dropping every datagram travelling in the given
// direction(s); OR Dir values to cut both ways. Safe for concurrent use
// with traffic.
func (c *WireChaos) SetPartition(dir Dir) {
	for {
		old := c.partMask.Load()
		if old|uint32(dir) == old || c.partMask.CompareAndSwap(old, old|uint32(dir)) {
			return
		}
	}
}

// ClearPartition heals all partitions; the probabilistic model stays.
func (c *WireChaos) ClearPartition() { c.partMask.Store(0) }

// DropDir reports whether the datagram identified by (station, seq)
// travelling in dir is lost: deterministically if dir is partitioned,
// otherwise by the seeded model exactly as Drop would decide (direction
// does not enter the hash, so a partition toggled mid-run never perturbs
// the model's same-seed decisions).
func (c *WireChaos) DropDir(dir Dir, station, seq uint32) bool {
	if Dir(c.partMask.Load())&dir != 0 {
		c.partDrops.Add(1)
		return true
	}
	return c.Drop(station, seq)
}

// PartitionDrops reports how many datagrams partitions have swallowed.
func (c *WireChaos) PartitionDrops() int64 { return c.partDrops.Load() }

// Drop reports whether the datagram identified by (station, seq) is lost in
// transit, tallying the loss.
func (c *WireChaos) Drop(station, seq uint32) bool {
	if c.fs == nil {
		return false
	}
	return c.fs.dropFrame(frame.TypeData, station, seq)
}

// Corrupt flips one bit of the datagram with the model's Corrupt
// probability and returns the (possibly new) buffer; the input is never
// mutated. Unlike the MAC-frame path there is no header to protect — any
// bit may flip, which is exactly what a UDP receiver must survive.
func (c *WireChaos) Corrupt(buf []byte, station, seq uint32) []byte {
	if c.fs == nil || len(buf) == 0 {
		return buf
	}
	if c.fs.model.Corrupt <= 0 || c.fs.roll(rollCorrupt, frame.TypeData, station, seq) >= c.fs.model.Corrupt {
		return buf
	}
	bit := int(c.fs.raw(rollCorruptBit, frame.TypeData, station, seq) % uint64(len(buf)*8))
	out := make([]byte, len(buf))
	copy(out, buf)
	out[bit/8] ^= 1 << (bit % 8)
	c.fs.mu.Lock()
	c.fs.tally.CRCRejects++
	c.fs.mu.Unlock()
	return out
}

// Stall reports how many consecutive datagrams (starting with this one) the
// station suppresses because it froze, 0 meaning no stall. The caller is
// responsible for actually skipping that many sends.
func (c *WireChaos) Stall(station, seq uint32) int {
	if c.fs == nil {
		return 0
	}
	return c.fs.stallFor(station, seq)
}

// Injected snapshots the tally of faults fired so far: FramesLost counts
// dropped datagrams, CRCRejects corrupted ones, Stalls freeze events.
func (c *WireChaos) Injected() mac.FaultCounters {
	return c.fs.injected()
}
