// Package wlan builds the wireless-architecture scenarios of the paper's §4
// — enterprise WLANs, residential WLANs and multihop mesh networks — as
// samplable topology generators. Each generator draws one random instance
// of its scenario and reports the SIC gain available there, so the §4
// qualitative table ("upload to a common AP: yes; everything else: barely")
// can be reproduced as measured distributions (experiments.ExtArchitectures).
package wlan

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/topo"
)

// Deployment is a shared configuration for the §4 scenario samplers.
type Deployment struct {
	// Channel supplies bandwidth for all rate computations.
	Channel phy.Channel
	// PathLoss maps distance to SNR.
	PathLoss phy.PathLoss
	// PacketBits is the packet size used in completion-time formulas.
	PacketBits float64
	// APSpacing is the AP grid pitch (enterprise) or apartment width
	// (residential) in meters.
	APSpacing float64
}

// Validate reports the first problem with the deployment.
func (d Deployment) Validate() error {
	switch {
	case d.Channel.BandwidthHz <= 0:
		return errors.New("wlan: Channel is required")
	case d.PathLoss.RefSNR <= 0:
		return errors.New("wlan: PathLoss is required")
	case d.PacketBits <= 0:
		return errors.New("wlan: PacketBits must be positive")
	case d.APSpacing <= 0:
		return errors.New("wlan: APSpacing must be positive")
	}
	return nil
}

// DefaultDeployment is an indoor office: α=3.5, 55 dB at 1 m, 30 m AP pitch.
func DefaultDeployment() Deployment {
	pl, err := phy.NewPathLoss(3.5, 1, 55)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return Deployment{
		Channel:    phy.Wifi20MHz,
		PathLoss:   pl,
		PacketBits: 12000,
		APSpacing:  30,
	}
}

// EnterpriseUpload samples §4.1's "two clients to one AP": both clients
// uniform within the AP's cell, SIC pair gain with the serial fallback.
func (d Deployment) EnterpriseUpload(rng *rand.Rand) float64 {
	ap := topo.Point{}
	radius := d.APSpacing / 2
	c1 := topo.UniformInDisc(rng, ap, radius)
	c2 := topo.UniformInDisc(rng, ap, radius)
	p := core.Pair{
		S1: d.PathLoss.SNRAt(ap.Dist(c1)),
		S2: d.PathLoss.SNRAt(ap.Dist(c2)),
	}
	serial := p.SerialTime(d.Channel, d.PacketBits)
	sic := math.Min(p.SICTime(d.Channel, d.PacketBits), serial)
	return serial / sic
}

// EnterpriseDownload samples §4.1's "two APs to one client": the client is
// uniform between two adjacent APs; the wired backbone lets the baseline
// push both packets through the stronger AP (Eq. 10).
func (d Deployment) EnterpriseDownload(rng *rand.Rand) float64 {
	ap1 := topo.Point{}
	ap2 := topo.Point{X: d.APSpacing}
	c := topo.UniformInRect(rng, 0, -d.APSpacing/2, d.APSpacing, d.APSpacing/2)
	dl := core.Download{
		S1: d.PathLoss.SNRAt(ap1.Dist(c)),
		S2: d.PathLoss.SNRAt(ap2.Dist(c)),
	}
	g := dl.Gain(d.Channel, d.PacketBits)
	if g < 1 {
		return 1 // the backbone MAC would just serialise via the stronger AP
	}
	return g
}

// EnterpriseCross samples §4.1's "two clients to two APs" with nearest-AP
// association — the setting where the paper argues SIC is simply not
// needed (each client's own signal dominates at its own AP).
func (d Deployment) EnterpriseCross(rng *rand.Rand) float64 {
	ap1 := topo.Point{}
	ap2 := topo.Point{X: d.APSpacing}
	// Each client anywhere in the two-cell area, then associated to the
	// nearest AP; resample until the two clients pick different APs.
	var c1, c2 topo.Point
	for {
		c1 = topo.UniformInRect(rng, -d.APSpacing/2, -d.APSpacing/2, 1.5*d.APSpacing, d.APSpacing/2)
		c2 = topo.UniformInRect(rng, -d.APSpacing/2, -d.APSpacing/2, 1.5*d.APSpacing, d.APSpacing/2)
		near1, _ := topo.Nearest(c1, []topo.Point{ap1, ap2})
		near2, _ := topo.Nearest(c2, []topo.Point{ap1, ap2})
		if near1 == 0 && near2 == 1 {
			break
		}
		if near1 == 1 && near2 == 0 {
			c1, c2 = c2, c1
			break
		}
	}
	// Uplink: client1 → AP1 while client2 → AP2.
	var x core.Cross
	x.S[0][0] = d.PathLoss.SNRAt(c1.Dist(ap1))
	x.S[0][1] = d.PathLoss.SNRAt(c2.Dist(ap1))
	x.S[1][0] = d.PathLoss.SNRAt(c1.Dist(ap2))
	x.S[1][1] = d.PathLoss.SNRAt(c2.Dist(ap2))
	return x.Gain(d.Channel, d.PacketBits)
}

// ResidentialDownload samples §4.2: two adjacent apartments, each client
// locked to its own apartment's AP (no backbone, WPA boundaries). The
// sampled concurrency is AP1→C1 alongside AP2→C2.
func (d Deployment) ResidentialDownload(rng *rand.Rand) float64 {
	w := d.APSpacing // apartment width
	// AP1 in the left apartment, AP2 in the right; clients anywhere within
	// their own apartment.
	ap1 := topo.Point{X: w / 4}
	ap2 := topo.Point{X: w + w/4}
	c1 := topo.UniformInRect(rng, 0, -w/4, w, w/4)
	c2 := topo.UniformInRect(rng, w, -w/4, 2*w, w/4)
	var x core.Cross
	x.S[0][0] = d.PathLoss.SNRAt(c1.Dist(ap1))
	x.S[0][1] = d.PathLoss.SNRAt(c1.Dist(ap2))
	x.S[1][0] = d.PathLoss.SNRAt(c2.Dist(ap1))
	x.S[1][1] = d.PathLoss.SNRAt(c2.Dist(ap2))
	return x.Gain(d.Channel, d.PacketBits)
}

// MeshRelay samples §4.3's self-interference pipeline A→C→D→E: hop lengths
// are drawn around a long-short-long profile, and the gain is the pipeline
// cycle-time ratio without/with SIC-enabled concurrency of A→C and D→E.
func (d Deployment) MeshRelay(rng *rand.Rand) float64 {
	long1 := d.APSpacing * (0.8 + 0.6*rng.Float64())
	short := d.APSpacing * (0.1 + 0.2*rng.Float64())
	long2 := d.APSpacing * (0.8 + 0.6*rng.Float64())

	posA := 0.0
	posC := posA + long1
	posD := posC + short
	posE := posD + long2

	snrAC := d.PathLoss.SNRAt(posC - posA)
	snrCD := d.PathLoss.SNRAt(posD - posC)
	snrDE := d.PathLoss.SNRAt(posE - posD)

	var x core.Cross
	x.S[0][0] = snrAC
	x.S[0][1] = d.PathLoss.SNRAt(posD - posC) // D heard at C
	x.S[1][0] = d.PathLoss.SNRAt(posE - posA) // A heard at E
	x.S[1][1] = snrDE

	tAC := phy.TxTime(d.PacketBits, d.Channel.Capacity(snrAC))
	tCD := phy.TxTime(d.PacketBits, d.Channel.Capacity(snrCD))
	tDE := phy.TxTime(d.PacketBits, d.Channel.Capacity(snrDE))
	serial := tAC + tCD + tDE
	best := serial
	if conc, ok := x.ConcurrentTime(d.Channel, d.PacketBits); ok && conc+tCD < best {
		best = conc + tCD
	}
	return serial / best
}

// Scenario names one §4 architecture sampler.
type Scenario struct {
	// Name labels the scenario, e.g. "enterprise-upload".
	Name string
	// Sample draws one random instance and returns its SIC gain (≥ 1).
	Sample func(rng *rand.Rand) float64
}

// Scenarios returns the §4 set in paper order.
func (d Deployment) Scenarios() []Scenario {
	return []Scenario{
		{"enterprise-upload", d.EnterpriseUpload},
		{"enterprise-download", d.EnterpriseDownload},
		{"enterprise-cross", d.EnterpriseCross},
		{"residential-download", d.ResidentialDownload},
		{"mesh-relay", d.MeshRelay},
	}
}
