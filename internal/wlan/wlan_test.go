package wlan

import (
	"math/rand"
	"testing"

	"repro/internal/phy"
	"repro/internal/stats"
)

func TestDeploymentValidate(t *testing.T) {
	good := DefaultDeployment()
	if err := good.Validate(); err != nil {
		t.Fatalf("default deployment invalid: %v", err)
	}
	mutations := []func(*Deployment){
		func(d *Deployment) { d.Channel = phy.Channel{} },
		func(d *Deployment) { d.PathLoss = phy.PathLoss{} },
		func(d *Deployment) { d.PacketBits = 0 },
		func(d *Deployment) { d.APSpacing = 0 },
	}
	for i, m := range mutations {
		d := DefaultDeployment()
		m(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// sampleMany draws n gains and returns their ECDF.
func sampleMany(t *testing.T, f func(*rand.Rand) float64, n int) stats.ECDF {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, n)
	for i := range samples {
		g := f(rng)
		if g < 1-1e-9 {
			t.Fatalf("gain %v below 1", g)
		}
		samples[i] = g
	}
	e, err := stats.NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScenariosListed(t *testing.T) {
	d := DefaultDeployment()
	sc := d.Scenarios()
	if len(sc) != 5 {
		t.Fatalf("Scenarios() = %d, want 5", len(sc))
	}
	seen := map[string]bool{}
	for _, s := range sc {
		if s.Name == "" || s.Sample == nil {
			t.Errorf("bad scenario %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// The §4 qualitative table, as distribution assertions.
func TestArchitectureOrdering(t *testing.T) {
	d := DefaultDeployment()
	const n = 3000

	upload := sampleMany(t, d.EnterpriseUpload, n)
	download := sampleMany(t, d.EnterpriseDownload, n)
	cross := sampleMany(t, d.EnterpriseCross, n)
	residential := sampleMany(t, d.ResidentialDownload, n)
	mesh := sampleMany(t, d.MeshRelay, n)

	// Upload to a common AP is the headline use case.
	if up := upload.FracAbove(1.2); up < 0.15 {
		t.Errorf("enterprise upload >20%% gain fraction %v too small", up)
	}
	// Two APs to one client barely benefits (the strong-AP baseline).
	if dl := download.FracAbove(1.2); dl > 0.05 {
		t.Errorf("enterprise download should be nearly gainless, got %v above 1.2", dl)
	}
	// Nearest-AP cross traffic: "SIC is not needed" — gain ≈ 1 nearly everywhere.
	if cr := cross.FracAbove(1.01); cr > 0.10 {
		t.Errorf("nearest-AP cross traffic should be ≈gainless, got %v above 1.01", cr)
	}
	// Residential download offers *some* opportunities (more than enterprise
	// cross traffic) because clients cannot switch APs.
	if res, cr := residential.FracAbove(1.05), cross.FracAbove(1.05); res <= cr {
		t.Errorf("residential (%v) should beat nearest-AP enterprise cross (%v)", res, cr)
	}
	// The long-short-long mesh relay is a reliable SIC opportunity.
	if m := mesh.FracAbove(1.1); m < 0.3 {
		t.Errorf("mesh relay >10%% gain fraction %v too small", m)
	}
	// And upload dominates download everywhere on the CDF.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if upload.Quantile(q) < download.Quantile(q) {
			t.Errorf("upload q%v (%v) below download (%v)", q, upload.Quantile(q), download.Quantile(q))
		}
	}
}

func TestSamplersDeterministic(t *testing.T) {
	d := DefaultDeployment()
	for _, sc := range d.Scenarios() {
		a := sc.Sample(rand.New(rand.NewSource(7)))
		b := sc.Sample(rand.New(rand.NewSource(7)))
		if a != b {
			t.Errorf("%s: same seed, different gains: %v vs %v", sc.Name, a, b)
		}
	}
}

func TestEnterpriseCrossAssignsDistinctAPs(t *testing.T) {
	// The sampler must terminate and produce finite gains even though it
	// resamples until the clients pick different APs.
	d := DefaultDeployment()
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 500; i++ {
		if g := d.EnterpriseCross(rng); g < 1-1e-9 || g > 2+1e-9 {
			t.Fatalf("suspicious cross gain %v", g)
		}
	}
}
