// Package topo provides the planar geometry and random node placement used
// by the paper's Monte-Carlo evaluations: transmitters separated by a fixed
// range with receivers dropped uniformly inside each transmitter's range
// (§3.2), grids of access points, and uniform client scatter.
//
// All randomised helpers take an explicit *rand.Rand so experiments are
// reproducible run-to-run and safe to parallelise with per-goroutine RNGs.
package topo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in the plane, in meters.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point {
	return Point{p.X + q.X, p.Y + q.Y}
}

// UniformInDisc returns a point uniformly distributed in the disc of the
// given radius centred at c. It uses the inverse-CDF radius transform rather
// than rejection, so it consumes exactly two uniform variates per call.
func UniformInDisc(rng *rand.Rand, c Point, radius float64) Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return Point{c.X + r*math.Cos(theta), c.Y + r*math.Sin(theta)}
}

// UniformInRect returns a point uniformly distributed in the axis-aligned
// rectangle [x0,x1]×[y0,y1].
func UniformInRect(rng *rand.Rand, x0, y0, x1, y1 float64) Point {
	return Point{x0 + rng.Float64()*(x1-x0), y0 + rng.Float64()*(y1-y0)}
}

// TwoLinkPlacement is the §3.2 Monte-Carlo construction: two transmitters a
// fixed distance apart, each with a receiver placed uniformly at random
// within its communication range.
type TwoLinkPlacement struct {
	T1, T2 Point
	R1, R2 Point
}

// PlaceTwoLinks fixes T1 at the origin and T2 at (separation, 0), then drops
// R1 and R2 uniformly inside the disc of the given range around their own
// transmitters, exactly as described for the paper's Fig. 6 experiment.
func PlaceTwoLinks(rng *rand.Rand, separation, txRange float64) TwoLinkPlacement {
	t1 := Point{0, 0}
	t2 := Point{separation, 0}
	return TwoLinkPlacement{
		T1: t1,
		T2: t2,
		R1: UniformInDisc(rng, t1, txRange),
		R2: UniformInDisc(rng, t2, txRange),
	}
}

// Grid lays out n points on a near-square grid with the given spacing,
// starting at origin. Used for building-like AP deployments.
func Grid(n int, spacing float64, origin Point) []Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		row, col := i/cols, i%cols
		pts = append(pts, origin.Add(Point{float64(col) * spacing, float64(row) * spacing}))
	}
	return pts
}

// Nearest returns the index of the point in pts closest to p and the
// distance to it. It panics on an empty slice, which is always a programming
// error here.
func Nearest(p Point, pts []Point) (int, float64) {
	if len(pts) == 0 {
		panic("topo: Nearest on empty point set")
	}
	best, bestD := 0, p.Dist(pts[0])
	for i := 1; i < len(pts); i++ {
		if d := p.Dist(pts[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
