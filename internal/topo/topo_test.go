package topo

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Dist(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Dist(c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestPointAdd(t *testing.T) {
	got := Point{1, 2}.Add(Point{3, -1})
	if got != (Point{4, 1}) {
		t.Errorf("Add = %v, want (4,1)", got)
	}
}

func TestUniformInDiscBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Point{5, -3}
	const radius = 7.0
	for i := 0; i < 10000; i++ {
		p := UniformInDisc(rng, c, radius)
		if d := p.Dist(c); d > radius+1e-9 {
			t.Fatalf("point %v outside disc: dist %v > %v", p, d, radius)
		}
	}
}

func TestUniformInDiscIsUniform(t *testing.T) {
	// For a uniform distribution on a disc, the fraction of points within
	// r/2 of the centre is 1/4 and the mean distance is 2r/3.
	rng := rand.New(rand.NewSource(2))
	const n = 50000
	const radius = 1.0
	inside := 0
	sumD := 0.0
	for i := 0; i < n; i++ {
		d := UniformInDisc(rng, Point{}, radius).Dist(Point{})
		sumD += d
		if d < radius/2 {
			inside++
		}
	}
	if frac := float64(inside) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("fraction within r/2 = %v, want ≈0.25", frac)
	}
	if mean := sumD / n; math.Abs(mean-2.0/3.0) > 0.01 {
		t.Errorf("mean distance = %v, want ≈2/3", mean)
	}
}

func TestUniformInRect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		p := UniformInRect(rng, -1, 2, 4, 6)
		if p.X < -1 || p.X > 4 || p.Y < 2 || p.Y > 6 {
			t.Fatalf("point %v outside rect", p)
		}
	}
}

func TestPlaceTwoLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		pl := PlaceTwoLinks(rng, 30, 10)
		if pl.T1 != (Point{0, 0}) || pl.T2 != (Point{30, 0}) {
			t.Fatalf("transmitters misplaced: %v %v", pl.T1, pl.T2)
		}
		if d := pl.R1.Dist(pl.T1); d > 10+1e-9 {
			t.Fatalf("R1 outside T1 range: %v", d)
		}
		if d := pl.R2.Dist(pl.T2); d > 10+1e-9 {
			t.Fatalf("R2 outside T2 range: %v", d)
		}
	}
}

func TestGrid(t *testing.T) {
	pts := Grid(5, 10, Point{100, 200})
	if len(pts) != 5 {
		t.Fatalf("Grid(5) returned %d points", len(pts))
	}
	if pts[0] != (Point{100, 200}) {
		t.Errorf("first point %v, want origin", pts[0])
	}
	// 5 points on a 3-wide grid: row 1 starts at index 3.
	if pts[3] != (Point{100, 210}) {
		t.Errorf("pts[3] = %v, want (100, 210)", pts[3])
	}
	if Grid(0, 1, Point{}) != nil {
		t.Error("Grid(0) should be nil")
	}
	// All points distinct.
	seen := map[Point]bool{}
	for _, p := range Grid(17, 3, Point{}) {
		if seen[p] {
			t.Fatalf("duplicate grid point %v", p)
		}
		seen[p] = true
	}
}

func TestNearest(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {5, 5}}
	idx, d := Nearest(Point{9, 1}, pts)
	if idx != 1 {
		t.Errorf("Nearest index = %d, want 1", idx)
	}
	if math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Nearest dist = %v, want √2", d)
	}
}

func TestNearestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nearest on empty set did not panic")
		}
	}()
	Nearest(Point{}, nil)
}

func TestPlacementDeterministic(t *testing.T) {
	a := PlaceTwoLinks(rand.New(rand.NewSource(42)), 20, 8)
	b := PlaceTwoLinks(rand.New(rand.NewSource(42)), 20, 8)
	if a != b {
		t.Errorf("same seed produced different placements: %+v vs %+v", a, b)
	}
}
