// Package phy models the physical-layer quantities the paper's analysis is
// built on: decibel conversions, Shannon capacity, SINR arithmetic, and
// log-distance path loss with optional log-normal shadowing.
//
// Signal strengths cross package boundaries as linear power ratios relative
// to the noise floor (i.e. an SNR of 100 means the received power is 20 dB
// above noise). This keeps every equation from the paper a one-liner and
// avoids unit confusion; use DB and FromDB at the edges.
package phy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Ln2 is cached so capacity computations avoid repeated division constant setup.
const ln2 = math.Ln2

// DB converts a linear power ratio to decibels.
//
// Edge conventions (shared element-wise by DBSlice and pinned by the table
// tests in kernels_test.go): DB(0) returns -Inf, matching the physical
// meaning of zero power; a negative ratio — which no physical measurement
// can produce, so it always marks an upstream arithmetic error — returns
// NaN, which stats.NewECDF rejects loudly instead of folding into a CDF.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// Log2 returns the base-2 logarithm. It is a tiny wrapper kept for symmetry
// with the capacity formulas in the paper.
func Log2(x float64) float64 {
	return math.Log(x) / ln2
}

// Capacity returns the Shannon capacity in bits/second of a channel with
// bandwidth bw (Hz) at the given linear SINR:
//
//	C = B · log2(1 + SINR)
//
// A non-positive — or NaN — SINR yields zero capacity (an unusable channel)
// rather than a NaN, because that is what every caller in this repository
// wants; the negated comparison below catches NaN, which a plain `<= 0`
// guard would silently wave through into B·log2(1+NaN).
func Capacity(bw, sinr float64) float64 {
	if !(sinr > 0) || bw <= 0 {
		return 0
	}
	return bw * Log2(1+sinr)
}

// SINRFor inverts Capacity: it returns the minimum linear SINR needed to
// sustain rate bits/second over bandwidth bw Hz.
//
//	SINR = 2^(rate/B) − 1
func SINRFor(bw, rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	if bw <= 0 {
		return math.Inf(1)
	}
	return math.Exp2(rate/bw) - 1
}

// SINR combines a desired signal s with interference i, both expressed as
// linear ratios to the noise floor. The +1 term is the (normalised) noise.
//
//	SINR = S / (I + N₀)  with N₀ ≡ 1
//
// Negative interference is physically impossible, but it does reach here
// legitimately as floating-point cancellation residue: SIC chains compute
// residual interference by subtraction, which can land a few ULPs below
// zero instead of at it. Residue in (-1, 0) perturbs the ratio by at most
// a rounding term and is left untouched (preserving bit-identical results
// with the pre-kernel code). Interference at or below -1, however, makes
// the denominator non-positive — no arithmetic slip that small can
// produce it — and is clamped to the interference-free ratio s instead of
// returning ±Inf or a negative ratio that would poison capacities and
// ECDFs downstream.
func SINR(s, i float64) float64 {
	if i <= -1 {
		return s
	}
	return s / (i + 1)
}

// Channel describes a wireless channel: its bandwidth and noise floor.
// The zero value is not useful; use NewChannel.
type Channel struct {
	// BandwidthHz is the channel bandwidth B in hertz.
	BandwidthHz float64
	// NoiseW is the thermal noise power N0 in watts. Signal strengths that
	// carry absolute units (watts) are divided by NoiseW to obtain the
	// normalised linear ratios used throughout the library.
	NoiseW float64
}

// NewChannel returns a channel with the given bandwidth (Hz) and noise
// power (W). It panics if either is non-positive, since such a channel is a
// programming error rather than a runtime condition.
func NewChannel(bandwidthHz, noiseW float64) Channel {
	if bandwidthHz <= 0 {
		panic(fmt.Sprintf("phy: non-positive bandwidth %v", bandwidthHz))
	}
	if noiseW <= 0 {
		panic(fmt.Sprintf("phy: non-positive noise %v", noiseW))
	}
	return Channel{BandwidthHz: bandwidthHz, NoiseW: noiseW}
}

// Wifi20MHz is a convenience channel: 20 MHz bandwidth with the noise floor
// normalised to 1, so signal strengths are interpreted directly as SNR.
var Wifi20MHz = Channel{BandwidthHz: 20e6, NoiseW: 1}

// Normalize converts an absolute received power (W) into the linear
// signal-to-noise ratio used by the analysis packages.
func (c Channel) Normalize(powerW float64) float64 {
	return powerW / c.NoiseW
}

// Capacity returns the Shannon capacity of this channel at the given linear
// SINR.
func (c Channel) Capacity(sinr float64) float64 {
	return Capacity(c.BandwidthHz, sinr)
}

// PathLoss is a deterministic large-scale propagation model mapping distance
// to received SNR (linear, noise-normalised).
type PathLoss struct {
	// Exponent is the path-loss exponent α (2 in free space, 3–4 indoors).
	Exponent float64
	// RefDistance d0 is the reference distance in meters at which the
	// received SNR equals RefSNR.
	RefDistance float64
	// RefSNR is the linear SNR measured at RefDistance.
	RefSNR float64
}

// ErrBadPathLoss reports an invalid path-loss configuration.
var ErrBadPathLoss = errors.New("phy: path-loss model requires positive exponent, reference distance and reference SNR")

// NewPathLoss builds a log-distance path-loss model. refSNRdB is the SNR in
// dB at the reference distance d0 (meters).
func NewPathLoss(exponent, refDistance, refSNRdB float64) (PathLoss, error) {
	pl := PathLoss{Exponent: exponent, RefDistance: refDistance, RefSNR: FromDB(refSNRdB)}
	if exponent <= 0 || refDistance <= 0 || pl.RefSNR <= 0 {
		return PathLoss{}, ErrBadPathLoss
	}
	return pl, nil
}

// SNRAt returns the linear SNR at distance d meters:
//
//	SNR(d) = RefSNR · (d0/d)^α
//
// Distances below the reference distance are clamped to it, which caps the
// near-field SNR instead of letting it diverge.
func (p PathLoss) SNRAt(d float64) float64 {
	if d < p.RefDistance {
		d = p.RefDistance
	}
	return p.RefSNR * math.Pow(p.RefDistance/d, p.Exponent)
}

// Shadowed returns the SNR at distance d with one sample of log-normal
// shadowing applied: the dB value is perturbed by a zero-mean Gaussian with
// standard deviation sigmaDB. The rng must not be nil.
func (p PathLoss) Shadowed(d, sigmaDB float64, rng *rand.Rand) float64 {
	snr := p.SNRAt(d)
	if sigmaDB <= 0 {
		return snr
	}
	return FromDB(DB(snr) + rng.NormFloat64()*sigmaDB)
}

// TxTime returns the time (seconds) to transmit bits at rate bits/second.
// A non-positive rate means the link cannot carry the packet at all; the
// transmission time is +Inf, which propagates correctly through min/max
// completion-time comparisons.
func TxTime(bits, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return bits / rate
}
