package phy

// This file holds the columnar (structure-of-arrays) kernels behind the
// batched Monte-Carlo engine: every function applies the corresponding
// scalar operation element-wise over contiguous float64 columns.
//
// Contract (pinned by DESIGN.md and the oracle tests in kernels_test.go):
// each slice kernel evaluates the *same* floating-point expression as its
// scalar counterpart, in the same order per element, so scalar and batched
// paths agree to the last ULP — bit-identical, not merely close. Anything
// that would break that (fused multiply-adds, reassociation, approximate
// log/exp) is out of bounds here.
//
// All kernels require len(dst) == len(src) (and panic via the bounds check
// otherwise, since a length mismatch is a programming error), and permit
// dst to alias a source slice, which the batch arena exploits to convert
// distance columns to SNR columns in place.

// DBSlice fills dst[i] = DB(linear[i]). The scalar edge conventions apply
// element-wise: zero maps to -Inf, negative input to NaN.
func DBSlice(dst, linear []float64) {
	if len(dst) != len(linear) {
		panic("phy: DBSlice length mismatch")
	}
	for i, v := range linear {
		dst[i] = DB(v)
	}
}

// FromDBSlice fills dst[i] = FromDB(db[i]).
func FromDBSlice(dst, db []float64) {
	if len(dst) != len(db) {
		panic("phy: FromDBSlice length mismatch")
	}
	for i, v := range db {
		dst[i] = FromDB(v)
	}
}

// SINRSlice fills dst[i] = SINR(s[i], in[i]): the desired-signal column
// combined with the interference column under the normalised noise floor,
// with the scalar function's negative-interference clamp applied
// element-wise.
func SINRSlice(dst, s, in []float64) {
	if len(dst) != len(s) || len(s) != len(in) {
		panic("phy: SINRSlice length mismatch")
	}
	for i := range dst {
		dst[i] = SINR(s[i], in[i])
	}
}

// CapacitySlice fills dst[i] = Capacity(bw, sinr[i]).
func CapacitySlice(dst []float64, bw float64, sinr []float64) {
	if len(dst) != len(sinr) {
		panic("phy: CapacitySlice length mismatch")
	}
	for i, v := range sinr {
		dst[i] = Capacity(bw, v)
	}
}

// CapacitySlice fills dst[i] with the channel's Shannon capacity at
// sinr[i].
func (c Channel) CapacitySlice(dst, sinr []float64) {
	CapacitySlice(dst, c.BandwidthHz, sinr)
}

// SNRAtSlice fills dst[i] = p.SNRAt(d[i]): the path-loss model evaluated
// over a distance column. dst may alias d.
func (p PathLoss) SNRAtSlice(dst, d []float64) {
	if len(dst) != len(d) {
		panic("phy: SNRAtSlice length mismatch")
	}
	for i, v := range d {
		dst[i] = p.SNRAt(v)
	}
}

// TxTimeSlice fills dst[i] = TxTime(bits, rate[i]).
func TxTimeSlice(dst []float64, bits float64, rate []float64) {
	if len(dst) != len(rate) {
		panic("phy: TxTimeSlice length mismatch")
	}
	for i, v := range rate {
		dst[i] = TxTime(bits, v)
	}
}
