package phy

import (
	"fmt"
	"math"
	"math/rand"
)

// Fading is a first-order Gauss-Markov (autoregressive) shadow-fading
// process in dB: successive SNR samples are correlated, wandering around a
// mean with a configurable deviation. It is the standard discrete-time
// model for slow indoor channel variation and drives the rate-adaptation
// study (the paper's §1 argument that adaptation quality bounds SIC's
// usable slack).
//
//	s[t+1] = mean + rho·(s[t] − mean) + sigma·sqrt(1−rho²)·N(0,1)   (all dB)
//
// rho = 0 gives i.i.d. shadowing; rho → 1 freezes the channel.
type Fading struct {
	// MeanSNRdB is the long-run average SNR in dB.
	MeanSNRdB float64
	// SigmaDB is the stationary standard deviation in dB.
	SigmaDB float64
	// Rho is the per-step correlation in [0, 1).
	Rho float64

	cur         float64
	initialized bool
}

// NewFading validates and builds a fading process.
func NewFading(meanSNRdB, sigmaDB, rho float64) (*Fading, error) {
	if sigmaDB < 0 {
		return nil, fmt.Errorf("phy: negative fading sigma %v", sigmaDB)
	}
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("phy: fading rho %v outside [0,1)", rho)
	}
	return &Fading{MeanSNRdB: meanSNRdB, SigmaDB: sigmaDB, Rho: rho}, nil
}

// Next draws the next SNR sample (linear ratio). The first call draws from
// the stationary distribution.
func (f *Fading) Next(rng *rand.Rand) float64 {
	if !f.initialized {
		f.cur = f.MeanSNRdB + rng.NormFloat64()*f.SigmaDB
		f.initialized = true
		return FromDB(f.cur)
	}
	innov := f.SigmaDB * math.Sqrt(1-f.Rho*f.Rho)
	f.cur = f.MeanSNRdB + f.Rho*(f.cur-f.MeanSNRdB) + rng.NormFloat64()*innov
	return FromDB(f.cur)
}

// CurrentDB returns the most recent sample in dB (the mean before any draw).
func (f *Fading) CurrentDB() float64 {
	if !f.initialized {
		return f.MeanSNRdB
	}
	return f.cur
}

// Reset returns the process to its pre-first-draw state.
func (f *Fading) Reset() {
	f.initialized = false
	f.cur = 0
}
