package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	// Relative tolerance for large magnitudes.
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDBRoundTrip(t *testing.T) {
	cases := []float64{1, 2, 10, 100, 0.5, 1e-6, 1e9}
	for _, lin := range cases {
		got := FromDB(DB(lin))
		if !almostEqual(got, lin, 1e-12) {
			t.Errorf("FromDB(DB(%v)) = %v, want %v", lin, got, lin)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	cases := []struct {
		lin, db float64
	}{
		{1, 0},
		{10, 10},
		{100, 20},
		{1000, 30},
		{0.1, -10},
	}
	for _, c := range cases {
		if got := DB(c.lin); !almostEqual(got, c.db, 1e-12) {
			t.Errorf("DB(%v) = %v, want %v", c.lin, got, c.db)
		}
		if got := FromDB(c.db); !almostEqual(got, c.lin, 1e-12) {
			t.Errorf("FromDB(%v) = %v, want %v", c.db, got, c.lin)
		}
	}
}

func TestDBZeroIsMinusInf(t *testing.T) {
	if got := DB(0); !math.IsInf(got, -1) {
		t.Errorf("DB(0) = %v, want -Inf", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		lin := math.Abs(x)
		if lin == 0 || math.IsInf(lin, 0) || math.IsNaN(lin) {
			return true
		}
		return almostEqual(FromDB(DB(lin)), lin, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityKnownValues(t *testing.T) {
	// C = B log2(1+SNR): SNR=1 → B, SNR=3 → 2B, SNR=15 → 4B.
	cases := []struct {
		snr, want float64
	}{
		{1, 20e6},
		{3, 40e6},
		{15, 80e6},
		{0, 0},
		{-2, 0},
	}
	for _, c := range cases {
		if got := Capacity(20e6, c.snr); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("Capacity(20e6, %v) = %v, want %v", c.snr, got, c.want)
		}
	}
}

func TestCapacityMonotoneInSINR(t *testing.T) {
	prev := 0.0
	for snr := 0.1; snr < 1e6; snr *= 1.7 {
		c := Capacity(1e6, snr)
		if c <= prev {
			t.Fatalf("Capacity not strictly increasing at snr=%v: %v <= %v", snr, c, prev)
		}
		prev = c
	}
}

func TestSINRForInvertsCapacity(t *testing.T) {
	f := func(x float64) bool {
		snr := math.Abs(x)
		if snr == 0 || snr > 1e12 || math.IsNaN(snr) || math.IsInf(snr, 0) {
			return true
		}
		bw := 20e6
		rate := Capacity(bw, snr)
		back := SINRFor(bw, rate)
		return almostEqual(back, snr, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSINRForEdges(t *testing.T) {
	if got := SINRFor(20e6, 0); got != 0 {
		t.Errorf("SINRFor(bw, 0) = %v, want 0", got)
	}
	if got := SINRFor(0, 5); !math.IsInf(got, 1) {
		t.Errorf("SINRFor(0, rate) = %v, want +Inf", got)
	}
}

func TestSINRCombines(t *testing.T) {
	// S=30, I=9, N=1 → SINR = 3.
	if got := SINR(30, 9); !almostEqual(got, 3, 1e-12) {
		t.Errorf("SINR(30, 9) = %v, want 3", got)
	}
	// No interference: SINR = S/N0 = S.
	if got := SINR(42, 0); !almostEqual(got, 42, 1e-12) {
		t.Errorf("SINR(42, 0) = %v, want 42", got)
	}
}

func TestNewChannelPanics(t *testing.T) {
	for _, c := range []struct{ bw, n float64 }{{0, 1}, {-1, 1}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewChannel(%v, %v) did not panic", c.bw, c.n)
				}
			}()
			NewChannel(c.bw, c.n)
		}()
	}
}

func TestChannelNormalize(t *testing.T) {
	ch := NewChannel(20e6, 1e-10)
	if got := ch.Normalize(1e-7); !almostEqual(got, 1000, 1e-9) {
		t.Errorf("Normalize = %v, want 1000", got)
	}
}

func TestChannelCapacity(t *testing.T) {
	ch := Wifi20MHz
	if got := ch.Capacity(3); !almostEqual(got, 40e6, 1e-6) {
		t.Errorf("Wifi20MHz.Capacity(3) = %v, want 40e6", got)
	}
}

func TestNewPathLossValidation(t *testing.T) {
	for _, c := range []struct{ e, d, s float64 }{{0, 1, 10}, {4, 0, 10}, {4, 1, math.Inf(-1)}} {
		if _, err := NewPathLoss(c.e, c.d, c.s); err == nil {
			t.Errorf("NewPathLoss(%v, %v, %v): want error", c.e, c.d, c.s)
		}
	}
	if _, err := NewPathLoss(4, 1, 60); err != nil {
		t.Errorf("NewPathLoss(4,1,60): unexpected error %v", err)
	}
}

func TestPathLossSNRAt(t *testing.T) {
	pl, err := NewPathLoss(4, 1, 60) // 60 dB at 1 m
	if err != nil {
		t.Fatal(err)
	}
	// At 10 m with α=4 the SNR drops by 40 dB: 60-40 = 20 dB = 100x.
	if got := pl.SNRAt(10); !almostEqual(got, 100, 1e-6) {
		t.Errorf("SNRAt(10) = %v, want 100", got)
	}
	// Below the reference distance the SNR is clamped.
	if got := pl.SNRAt(0.01); !almostEqual(got, pl.RefSNR, 1e-9) {
		t.Errorf("SNRAt(0.01) = %v, want clamp to %v", got, pl.RefSNR)
	}
}

func TestPathLossMonotoneProperty(t *testing.T) {
	pl, _ := NewPathLoss(3.5, 1, 55)
	f := func(a, b float64) bool {
		d1, d2 := 1+math.Abs(a), 1+math.Abs(b)
		if math.IsInf(d1, 0) || math.IsInf(d2, 0) || math.IsNaN(d1) || math.IsNaN(d2) {
			return true
		}
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return pl.SNRAt(d1) >= pl.SNRAt(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowedZeroSigmaIsDeterministic(t *testing.T) {
	pl, _ := NewPathLoss(4, 1, 60)
	rng := rand.New(rand.NewSource(1))
	if got, want := pl.Shadowed(5, 0, rng), pl.SNRAt(5); got != want {
		t.Errorf("Shadowed with sigma=0 = %v, want %v", got, want)
	}
}

func TestShadowedStatistics(t *testing.T) {
	pl, _ := NewPathLoss(4, 1, 60)
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	const sigma = 6.0
	meanDB := 0.0
	for i := 0; i < n; i++ {
		meanDB += DB(pl.Shadowed(10, sigma, rng))
	}
	meanDB /= n
	wantDB := DB(pl.SNRAt(10))
	// Mean of the dB perturbation is zero; allow 3 sigma/sqrt(n).
	if math.Abs(meanDB-wantDB) > 3*sigma/math.Sqrt(n) {
		t.Errorf("shadowed mean %v dB too far from %v dB", meanDB, wantDB)
	}
}

func TestTxTime(t *testing.T) {
	if got := TxTime(1e6, 1e6); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TxTime(1e6, 1e6) = %v, want 1", got)
	}
	if got := TxTime(1e6, 0); !math.IsInf(got, 1) {
		t.Errorf("TxTime with zero rate = %v, want +Inf", got)
	}
	if got := TxTime(1e6, -3); !math.IsInf(got, 1) {
		t.Errorf("TxTime with negative rate = %v, want +Inf", got)
	}
}
