package phy

import (
	"math"
	"math/rand"
	"testing"
)

// edgeCases is the shared table for the dB/linear/SINR edge paths: every
// case is asserted against the scalar function AND the slice kernel, so
// the two can never drift apart on the inputs that used to leak silent
// -Inf/NaN into ECDFs.
var edgeCases = []struct {
	name   string
	linear float64
	wantDB float64 // what DB must return (NaN compared via IsNaN)
}{
	{"unit", 1, 0},
	{"hundred", 100, 20},
	{"zero is -Inf", 0, math.Inf(-1)},
	{"negative is NaN", -3, math.NaN()},
	{"negative zero is -Inf", math.Copysign(0, -1), math.Inf(-1)},
	{"+Inf is +Inf", math.Inf(1), math.Inf(1)},
	{"NaN is NaN", math.NaN(), math.NaN()},
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestDBEdgeCasesScalarAndSlice(t *testing.T) {
	in := make([]float64, len(edgeCases))
	for i, c := range edgeCases {
		in[i] = c.linear
		if got := DB(c.linear); !sameFloat(got, c.wantDB) {
			t.Errorf("%s: DB(%v) = %v, want %v", c.name, c.linear, got, c.wantDB)
		}
	}
	out := make([]float64, len(in))
	DBSlice(out, in)
	for i, c := range edgeCases {
		if !sameFloat(out[i], c.wantDB) {
			t.Errorf("%s: DBSlice[%d] = %v, want %v", c.name, i, out[i], c.wantDB)
		}
	}
}

func TestSINREdgeCasesScalarAndSlice(t *testing.T) {
	cases := []struct {
		name string
		s, i float64
		want float64
	}{
		{"no interference", 100, 0, 100},
		{"equal power", 9, 2, 3},
		// Cancellation residue a few ULPs below zero keeps the literal
		// arithmetic (bit-compatibility with the pre-kernel code).
		{"tiny negative residue", 50, -1e-16, 50 / (1 + -1e-16)},
		{"zero interference plus noise", 50, -1, 50}, // denominator would be 0 unclamped
		{"very negative interference", 50, -1e9, 50},
		{"zero signal", 0, 4, 0},
	}
	s := make([]float64, len(cases))
	in := make([]float64, len(cases))
	for k, c := range cases {
		s[k], in[k] = c.s, c.i
		got := SINR(c.s, c.i)
		if !sameFloat(got, c.want) {
			t.Errorf("%s: SINR(%v, %v) = %v, want %v", c.name, c.s, c.i, got, c.want)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("%s: SINR(%v, %v) = %v leaked a non-finite value", c.name, c.s, c.i, got)
		}
	}
	out := make([]float64, len(cases))
	SINRSlice(out, s, in)
	for k, c := range cases {
		if !sameFloat(out[k], c.want) {
			t.Errorf("%s: SINRSlice[%d] = %v, want %v", c.name, k, out[k], c.want)
		}
	}
}

func TestCapacityEdgeCasesScalarAndSlice(t *testing.T) {
	sinrs := []float64{-1, 0, math.Inf(-1), 1, 1e6, math.NaN()}
	out := make([]float64, len(sinrs))
	CapacitySlice(out, 20e6, sinrs)
	for i, v := range sinrs {
		want := Capacity(20e6, v)
		if !sameFloat(out[i], want) {
			t.Errorf("CapacitySlice(20e6)[%d]=%v != Capacity(20e6, %v)=%v", i, out[i], v, want)
		}
	}
	// Non-positive SINR (and NaN, which fails the > 0 comparison) is a
	// documented zero-capacity channel, never a NaN.
	for _, v := range []float64{-1, 0, math.Inf(-1), math.NaN()} {
		if got := Capacity(20e6, v); got != 0 {
			t.Errorf("Capacity(20e6, %v) = %v, want 0", v, got)
		}
	}
}

// TestKernelsMatchScalarULP is the oracle: over a wide random sweep every
// slice kernel must agree with its scalar counterpart bit-for-bit. This is
// the contract that lets the batched Monte-Carlo engine replace the scalar
// one without perturbing a single metrics.json byte.
func TestKernelsMatchScalarULP(t *testing.T) {
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	pl, err := NewPathLoss(4, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	lin := make([]float64, n)
	db := make([]float64, n)
	s := make([]float64, n)
	in := make([]float64, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		lin[i] = math.Exp(rng.Float64()*40 - 20) // spans ~±9 decades
		db[i] = rng.Float64()*140 - 70
		s[i] = math.Exp(rng.Float64() * 20)
		in[i] = math.Exp(rng.Float64() * 20)
		d[i] = rng.Float64() * 100
	}
	out := make([]float64, n)

	DBSlice(out, lin)
	for i := range out {
		if want := DB(lin[i]); !sameFloat(out[i], want) {
			t.Fatalf("DBSlice[%d] = %b, scalar %b", i, out[i], want)
		}
	}
	FromDBSlice(out, db)
	for i := range out {
		if want := FromDB(db[i]); !sameFloat(out[i], want) {
			t.Fatalf("FromDBSlice[%d] = %b, scalar %b", i, out[i], want)
		}
	}
	SINRSlice(out, s, in)
	for i := range out {
		if want := SINR(s[i], in[i]); !sameFloat(out[i], want) {
			t.Fatalf("SINRSlice[%d] = %b, scalar %b", i, out[i], want)
		}
	}
	Wifi20MHz.CapacitySlice(out, s)
	for i := range out {
		if want := Wifi20MHz.Capacity(s[i]); !sameFloat(out[i], want) {
			t.Fatalf("CapacitySlice[%d] = %b, scalar %b", i, out[i], want)
		}
	}
	pl.SNRAtSlice(out, d)
	for i := range out {
		if want := pl.SNRAt(d[i]); !sameFloat(out[i], want) {
			t.Fatalf("SNRAtSlice[%d] = %b, scalar %b", i, out[i], want)
		}
	}
	TxTimeSlice(out, 12000, s)
	for i := range out {
		if want := TxTime(12000, s[i]); !sameFloat(out[i], want) {
			t.Fatalf("TxTimeSlice[%d] = %b, scalar %b", i, out[i], want)
		}
	}
}

// TestSNRAtSliceAliasing pins the in-place conversion the batch arena
// relies on: dst may alias the distance column.
func TestSNRAtSliceAliasing(t *testing.T) {
	pl, err := NewPathLoss(4, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	d := []float64{0.5, 1, 2, 10, 40}
	want := make([]float64, len(d))
	for i, v := range d {
		want[i] = pl.SNRAt(v)
	}
	pl.SNRAtSlice(d, d)
	for i := range d {
		if !sameFloat(d[i], want[i]) {
			t.Fatalf("aliased SNRAtSlice[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DBSlice with mismatched lengths did not panic")
		}
	}()
	DBSlice(make([]float64, 2), make([]float64, 3))
}
