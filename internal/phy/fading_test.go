package phy

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewFadingValidation(t *testing.T) {
	if _, err := NewFading(20, -1, 0.5); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewFading(20, 5, 1); err == nil {
		t.Error("rho=1 accepted")
	}
	if _, err := NewFading(20, 5, -0.1); err == nil {
		t.Error("negative rho accepted")
	}
	if _, err := NewFading(20, 5, 0.9); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFadingStationaryMoments(t *testing.T) {
	f, err := NewFading(18, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		db := DB(f.Next(rng))
		sum += db
		sumSq += db * db
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-18) > 0.2 {
		t.Errorf("stationary mean %v, want ≈18", mean)
	}
	if math.Abs(std-5) > 0.2 {
		t.Errorf("stationary std %v, want ≈5", std)
	}
}

func TestFadingCorrelation(t *testing.T) {
	f, err := NewFading(20, 6, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 100000
	prev := DB(f.Next(rng))
	var num, den float64
	for i := 1; i < n; i++ {
		cur := DB(f.Next(rng))
		num += (prev - 20) * (cur - 20)
		den += (prev - 20) * (prev - 20)
		prev = cur
	}
	rho := num / den
	if math.Abs(rho-0.95) > 0.02 {
		t.Errorf("lag-1 autocorrelation %v, want ≈0.95", rho)
	}
}

func TestFadingIIDWhenRhoZero(t *testing.T) {
	f, err := NewFading(15, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 100000
	prev := DB(f.Next(rng))
	var num, den float64
	for i := 1; i < n; i++ {
		cur := DB(f.Next(rng))
		num += (prev - 15) * (cur - 15)
		den += (prev - 15) * (prev - 15)
		prev = cur
	}
	if rho := num / den; math.Abs(rho) > 0.02 {
		t.Errorf("rho=0 process shows correlation %v", rho)
	}
}

func TestFadingResetAndCurrent(t *testing.T) {
	f, err := NewFading(25, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.CurrentDB(); got != 25 {
		t.Errorf("CurrentDB before draws = %v, want the mean", got)
	}
	rng := rand.New(rand.NewSource(5))
	v := f.Next(rng)
	if got := f.CurrentDB(); math.Abs(got-DB(v)) > 1e-12 {
		t.Errorf("CurrentDB = %v, want %v", got, DB(v))
	}
	f.Reset()
	if got := f.CurrentDB(); got != 25 {
		t.Errorf("CurrentDB after Reset = %v, want the mean", got)
	}
	// Same seed after reset reproduces the sequence.
	f.Reset()
	a := f.Next(rand.New(rand.NewSource(9)))
	f.Reset()
	b := f.Next(rand.New(rand.NewSource(9)))
	if a != b {
		t.Errorf("reset did not restore determinism: %v vs %v", a, b)
	}
}
