// Package baseband is a symbol-level simulation of the SIC receiver the
// paper's analysis abstracts over. Where package core reasons in Shannon
// capacities, this package actually superimposes two modulated signals,
// estimates channels from pilots, decodes the stronger signal, remodulates
// and subtracts it, and decodes the weaker one from the residue — exactly
// the §2.1 procedure, including the practical imperfections §8 warns about:
//
//   - channel-estimation error turns into residual interference after
//     cancellation (the mac package's Residual knob, now derived rather
//     than assumed),
//   - ADC clipping makes very disparate signal pairs hard, because the
//     weak signal drowns in quantisation of the strong one.
//
// Everything is complex-baseband with unit-variance complex AWGN; a link of
// SNR s has |h|² = s.
package baseband

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Modulation selects a constellation.
type Modulation int

const (
	// BPSK: 1 bit/symbol.
	BPSK Modulation = iota
	// QPSK: 2 bits/symbol.
	QPSK
	// QAM16: 4 bits/symbol.
	QAM16
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "bpsk"
	case QPSK:
		return "qpsk"
	case QAM16:
		return "16qam"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// Constellation returns the unit-average-energy symbol set.
func (m Modulation) Constellation() []complex128 {
	switch m {
	case BPSK:
		return []complex128{-1, 1}
	case QPSK:
		s := math.Sqrt(0.5)
		return []complex128{
			complex(s, s), complex(s, -s), complex(-s, s), complex(-s, -s),
		}
	case QAM16:
		// 16-QAM levels ±1, ±3 normalised to unit average energy (E=10).
		n := math.Sqrt(10)
		var out []complex128
		for _, re := range []float64{-3, -1, 1, 3} {
			for _, im := range []float64{-3, -1, 1, 3} {
				out = append(out, complex(re/n, im/n))
			}
		}
		return out
	}
	return nil
}

// BitsPerSymbol returns log2 of the constellation size.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	}
	return 0
}

// randSymbols draws n uniform constellation indices.
func randSymbols(rng *rand.Rand, m Modulation, n int) []int {
	k := len(m.Constellation())
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(k)
	}
	return out
}

// awgn returns one sample of unit-variance complex Gaussian noise
// (variance 1/2 per real dimension).
func awgn(rng *rand.Rand) complex128 {
	s := math.Sqrt(0.5)
	return complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
}

// randGain returns a channel coefficient with |h|² = snr and uniform phase.
func randGain(rng *rand.Rand, snr float64) complex128 {
	theta := 2 * math.Pi * rng.Float64()
	return cmplx.Rect(math.Sqrt(snr), theta)
}

// nearest returns the index of the constellation point closest to y/h.
func nearest(y, h complex128, consts []complex128) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range consts {
		d := cmplx.Abs(y - h*c)
		if dd := d * d; dd < bestD {
			best, bestD = i, dd
		}
	}
	return best
}

// Config drives a pairwise SIC simulation.
type Config struct {
	// Mod is the constellation used by both transmitters.
	Mod Modulation
	// SNRStrongDB and SNRWeakDB are the two links' SNRs in dB.
	SNRStrongDB, SNRWeakDB float64
	// Symbols is the number of data symbols per transmitter.
	Symbols int
	// Pilots is the number of known pilot symbols per transmitter used for
	// channel estimation. 0 means the receiver is handed the true channels
	// (genie-aided, the paper's "perfect cancellation").
	Pilots int
	// ClipAmplitude, if positive, saturates the receiver front-end: each
	// received sample's real and imaginary parts are clamped to ±Clip.
	// Models the §8 ADC-saturation concern. 0 disables clipping.
	ClipAmplitude float64
	// CFONormalized is the residual carrier-frequency offset of the strong
	// transmitter in cycles per symbol. The receiver's channel estimate is
	// taken once (from pilots or the genie) and goes stale as the phase
	// drifts across the packet — the paper's §8 "frequency offset" concern:
	// cancellation error grows with symbol index.
	CFONormalized float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) validate() error {
	if c.Mod.BitsPerSymbol() == 0 {
		return errors.New("baseband: unknown modulation")
	}
	if c.Symbols <= 0 {
		return errors.New("baseband: Symbols must be positive")
	}
	if c.Pilots < 0 {
		return errors.New("baseband: Pilots must be non-negative")
	}
	if c.ClipAmplitude < 0 {
		return errors.New("baseband: ClipAmplitude must be non-negative")
	}
	if math.Abs(c.CFONormalized) >= 0.5 {
		return errors.New("baseband: |CFONormalized| must be below 0.5 cycles/symbol")
	}
	return nil
}

// Result reports a pairwise SIC run.
type Result struct {
	// SERStrong and SERWeak are symbol error rates of the two decodes.
	SERStrong, SERWeak float64
	// SERWeakAlone is the weak link's SER with the strong transmitter
	// silent — the interference-free reference.
	SERWeakAlone float64
	// ResidualBeta is the measured residual-interference fraction after
	// cancellation: |h−ĥ|²/|h|² averaged over the strong channel estimate.
	// This is the quantity the mac package's Residual knob abstracts.
	ResidualBeta float64
	// EstErrStrong is |h−ĥ|² for the strong channel (absolute).
	EstErrStrong float64
}

// clip saturates a sample.
func clip(y complex128, a float64) complex128 {
	if a <= 0 {
		return y
	}
	re, im := real(y), imag(y)
	if re > a {
		re = a
	}
	if re < -a {
		re = -a
	}
	if im > a {
		im = a
	}
	if im < -a {
		im = -a
	}
	return complex(re, im)
}

// estimateChannel least-squares-estimates h from pilot observations
// y = h·x + n with known unit-ish energy pilots x.
func estimateChannel(y, x []complex128) complex128 {
	var num complex128
	var den float64
	for i := range y {
		num += y[i] * cmplx.Conj(x[i])
		den += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if den == 0 {
		return 0
	}
	return num / complex(den, 0)
}

// Run executes the full SIC reception chain.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	consts := cfg.Mod.Constellation()

	hS := randGain(rng, dbToLin(cfg.SNRStrongDB))
	hW := randGain(rng, dbToLin(cfg.SNRWeakDB))

	// ---- Channel estimation (time-orthogonal pilot bursts) ----
	hSest, hWest := hS, hW
	if cfg.Pilots > 0 {
		pilotIdx := randSymbols(rng, cfg.Mod, cfg.Pilots)
		px := make([]complex128, cfg.Pilots)
		ys := make([]complex128, cfg.Pilots)
		yw := make([]complex128, cfg.Pilots)
		for i, s := range pilotIdx {
			px[i] = consts[s]
			ys[i] = clip(hS*px[i]+awgn(rng), cfg.ClipAmplitude)
			yw[i] = clip(hW*px[i]+awgn(rng), cfg.ClipAmplitude)
		}
		hSest = estimateChannel(ys, px)
		hWest = estimateChannel(yw, px)
	}

	// ---- Data phase: superimposed transmission ----
	symS := randSymbols(rng, cfg.Mod, cfg.Symbols)
	symW := randSymbols(rng, cfg.Mod, cfg.Symbols)
	noise := make([]complex128, cfg.Symbols)
	y := make([]complex128, cfg.Symbols)
	rot := cmplx.Rect(1, 2*math.Pi*cfg.CFONormalized)
	hSt := hS
	for i := 0; i < cfg.Symbols; i++ {
		noise[i] = awgn(rng)
		y[i] = clip(hSt*consts[symS[i]]+hW*consts[symW[i]]+noise[i], cfg.ClipAmplitude)
		hSt *= rot // the strong channel drifts; the receiver's estimate does not
	}

	var errStrong, errWeak, errAlone int
	for i := 0; i < cfg.Symbols; i++ {
		// 1. Decode the stronger signal, weak as interference.
		dS := nearest(y[i], hSest, consts)
		if dS != symS[i] {
			errStrong++
		}
		// 2. Reconstruct & subtract with the *estimated* channel.
		resid := y[i] - hSest*consts[dS]
		// 3. Decode the weaker from the residue.
		dW := nearest(resid, hWest, consts)
		if dW != symW[i] {
			errWeak++
		}
		// Reference: weak alone on the same noise (no strong signal at all).
		yAlone := clip(hW*consts[symW[i]]+noise[i], cfg.ClipAmplitude)
		if nearest(yAlone, hWest, consts) != symW[i] {
			errAlone++
		}
	}

	dh := hS - hSest
	res := Result{
		SERStrong:    float64(errStrong) / float64(cfg.Symbols),
		SERWeak:      float64(errWeak) / float64(cfg.Symbols),
		SERWeakAlone: float64(errAlone) / float64(cfg.Symbols),
		EstErrStrong: real(dh)*real(dh) + imag(dh)*imag(dh),
	}
	if p := real(hS)*real(hS) + imag(hS)*imag(hS); p > 0 {
		res.ResidualBeta = res.EstErrStrong / p
	}
	return res, nil
}

// RunSingle measures the single-user SER of one link at the given SNR —
// the calibration point for theory comparisons.
func RunSingle(mod Modulation, snrDB float64, symbols int, seed int64) (float64, error) {
	cfg := Config{Mod: mod, SNRStrongDB: snrDB, SNRWeakDB: snrDB, Symbols: symbols, Seed: seed}
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	consts := mod.Constellation()
	h := randGain(rng, dbToLin(snrDB))
	sym := randSymbols(rng, mod, symbols)
	errs := 0
	for i := 0; i < symbols; i++ {
		y := h*consts[sym[i]] + awgn(rng)
		if nearest(y, h, consts) != sym[i] {
			errs++
		}
	}
	return float64(errs) / float64(symbols), nil
}

// TheoreticalSER returns the textbook symbol-error-rate approximation for
// the modulation at a given linear SNR (per symbol, unit-variance complex
// noise).
func TheoreticalSER(mod Modulation, snr float64) float64 {
	switch mod {
	case BPSK:
		// BPSK over complex noise: SER = Q(sqrt(2·SNR)).
		return qfunc(math.Sqrt(2 * snr))
	case QPSK:
		p := qfunc(math.Sqrt(snr))
		return 2*p - p*p
	case QAM16:
		// Per-axis 4-PAM error: 2(1−1/√M)·Q(√(3·SNR/(M−1))) with M=16.
		p := 1.5 * qfunc(math.Sqrt(snr/5))
		return 1 - (1-p)*(1-p)
	}
	return math.NaN()
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

func dbToLin(db float64) float64 { return math.Pow(10, db/10) }
