package baseband

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestConstellationEnergy(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16} {
		consts := m.Constellation()
		if len(consts) != 1<<m.BitsPerSymbol() {
			t.Errorf("%v: %d points for %d bits/symbol", m, len(consts), m.BitsPerSymbol())
		}
		var e float64
		for _, c := range consts {
			e += real(c)*real(c) + imag(c)*imag(c)
		}
		e /= float64(len(consts))
		if math.Abs(e-1) > 1e-12 {
			t.Errorf("%v: average energy %v, want 1", m, e)
		}
		// All points distinct.
		for i := range consts {
			for j := i + 1; j < len(consts); j++ {
				if consts[i] == consts[j] {
					t.Errorf("%v: duplicate constellation point %v", m, consts[i])
				}
			}
		}
	}
}

func TestModulationString(t *testing.T) {
	if BPSK.String() != "bpsk" || QPSK.String() != "qpsk" || QAM16.String() != "16qam" {
		t.Error("modulation names wrong")
	}
	if Modulation(9).Constellation() != nil || Modulation(9).BitsPerSymbol() != 0 {
		t.Error("unknown modulation should degrade gracefully")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Mod: Modulation(9), Symbols: 10},
		{Mod: QPSK, Symbols: 0},
		{Mod: QPSK, Symbols: 10, Pilots: -1},
		{Mod: QPSK, Symbols: 10, ClipAmplitude: -1},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Single-user SER must track the textbook approximation.
func TestSingleUserSERMatchesTheory(t *testing.T) {
	cases := []struct {
		mod   Modulation
		snrDB float64
	}{
		{BPSK, 6}, {BPSK, 9},
		{QPSK, 9}, {QPSK, 12},
		{QAM16, 16}, {QAM16, 18},
	}
	for _, c := range cases {
		ser, err := RunSingle(c.mod, c.snrDB, 400000, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := TheoreticalSER(c.mod, dbToLin(c.snrDB))
		if want < 1e-5 {
			continue // too few expected errors to measure
		}
		if ser < want*0.6 || ser > want*1.6 {
			t.Errorf("%v at %v dB: SER %v vs theory %v", c.mod, c.snrDB, ser, want)
		}
	}
}

// Genie-aided SIC (perfect channel knowledge): the weak decode must be as
// good as interference-free, per the paper's "perfect cancellation"
// assumption — provided the strong decode itself is reliable.
func TestGenieSICMatchesInterferenceFree(t *testing.T) {
	res, err := Run(Config{
		Mod: QPSK, SNRStrongDB: 30, SNRWeakDB: 12,
		Symbols: 200000, Pilots: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SERStrong > 1e-3 {
		t.Fatalf("strong decode unreliable: SER %v", res.SERStrong)
	}
	if res.ResidualBeta != 0 {
		t.Errorf("genie-aided residual beta = %v, want 0", res.ResidualBeta)
	}
	// Weak SER within noise of the alone reference.
	diff := math.Abs(res.SERWeak - res.SERWeakAlone)
	if diff > 0.005 {
		t.Errorf("weak SER %v deviates from interference-free %v", res.SERWeak, res.SERWeakAlone)
	}
}

// Channel estimation error shrinks as pilots grow: beta ∝ 1/Np.
func TestResidualShrinksWithPilots(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, np := range []int{4, 16, 64, 256} {
		// Average over several seeds to tame estimation noise.
		var sum float64
		const reps = 20
		for s := int64(0); s < reps; s++ {
			res, err := Run(Config{
				Mod: QPSK, SNRStrongDB: 25, SNRWeakDB: 10,
				Symbols: 1000, Pilots: np, Seed: 100 + s,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.ResidualBeta
		}
		avg := sum / reps
		if avg >= prev {
			t.Errorf("residual beta did not shrink: %v pilots → %v (prev %v)", np, avg, prev)
		}
		prev = avg
	}
}

// The measured residual beta should scale like 1/(Np·SNR_strong): the
// estimator error power is noiseVar/Np and beta divides by |h|².
func TestResidualBetaScale(t *testing.T) {
	const np = 32
	var sum float64
	const reps = 200
	for s := int64(0); s < reps; s++ {
		res, err := Run(Config{
			Mod: QPSK, SNRStrongDB: 20, SNRWeakDB: 8,
			Symbols: 100, Pilots: np, Seed: 1000 + s,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.ResidualBeta
	}
	avg := sum / reps
	want := 1.0 / (float64(np) * dbToLin(20))
	if avg < want/3 || avg > want*3 {
		t.Errorf("residual beta %v, want ≈ %v (1/(Np·SNR))", avg, want)
	}
}

// §8's ADC-saturation concern: clipping the front-end at a level sized for
// the strong signal destroys the weak decode when the disparity is large.
func TestClippingHurtsDisparatePairs(t *testing.T) {
	base := Config{
		Mod: QPSK, SNRStrongDB: 40, SNRWeakDB: 10,
		Symbols: 50000, Pilots: 0, Seed: 7,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	clipped := base
	// Clip at roughly half the strong signal's amplitude: severe saturation.
	clipped.ClipAmplitude = math.Sqrt(dbToLin(40)) * 0.5
	sat, err := Run(clipped)
	if err != nil {
		t.Fatal(err)
	}
	if sat.SERWeak <= clean.SERWeak+0.02 {
		t.Errorf("clipping should degrade the weak decode: %v vs %v", sat.SERWeak, clean.SERWeak)
	}
}

// A failed strong decode poisons cancellation: when the strong link's SINR
// is too low for its constellation, the weak SER collapses toward chance.
func TestUndecodableStrongPoisonsWeak(t *testing.T) {
	res, err := Run(Config{
		// Strong barely above the weak: QPSK under ~1.3 dB SINR fails a lot.
		Mod: QPSK, SNRStrongDB: 14, SNRWeakDB: 13,
		Symbols: 50000, Pilots: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SERStrong < 0.05 {
		t.Fatalf("expected an unreliable strong decode, SER %v", res.SERStrong)
	}
	if res.SERWeak < res.SERWeakAlone*2 {
		t.Errorf("cancellation with bad strong decisions should hurt the weak: %v vs alone %v",
			res.SERWeak, res.SERWeakAlone)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Mod: QAM16, SNRStrongDB: 28, SNRWeakDB: 14, Symbols: 5000, Pilots: 16, Seed: 5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestEstimateChannel(t *testing.T) {
	// Noise-free estimation recovers h exactly.
	h := complex(2, -1)
	x := []complex128{1, -1, complex(0, 1), complex(0.7, 0.7)}
	y := make([]complex128, len(x))
	for i := range x {
		y[i] = h * x[i]
	}
	if got := estimateChannel(y, x); cmplx.Abs(got-h) > 1e-12 {
		t.Errorf("estimateChannel = %v, want %v", got, h)
	}
	if got := estimateChannel(nil, nil); got != 0 {
		t.Errorf("empty estimate = %v, want 0", got)
	}
}

func TestClip(t *testing.T) {
	if got := clip(complex(5, -7), 2); got != complex(2, -2) {
		t.Errorf("clip = %v", got)
	}
	if got := clip(complex(1, 1), 0); got != complex(1, 1) {
		t.Errorf("clip disabled should pass through, got %v", got)
	}
}

func TestTheoreticalSERMonotone(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16} {
		prev := 1.0
		for snrDB := 0.0; snrDB <= 30; snrDB += 2 {
			s := TheoreticalSER(m, dbToLin(snrDB))
			if s > prev+1e-12 {
				t.Errorf("%v: SER not monotone at %v dB", m, snrDB)
			}
			prev = s
		}
	}
	if !math.IsNaN(TheoreticalSER(Modulation(9), 10)) {
		t.Error("unknown modulation should return NaN")
	}
}

// §8's frequency-offset concern: a static channel estimate goes stale as
// the strong carrier drifts, so cancellation degrades with CFO — and longer
// packets suffer more at the same offset.
func TestCFOBreaksCancellation(t *testing.T) {
	base := Config{
		Mod: QPSK, SNRStrongDB: 30, SNRWeakDB: 12,
		Symbols: 20000, Pilots: 0, Seed: 4,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	drifted := base
	drifted.CFONormalized = 1e-4 // 0.01% of the symbol rate
	cfo, err := Run(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if cfo.SERWeak <= clean.SERWeak+0.01 {
		t.Errorf("CFO should degrade the weak decode: %v vs %v", cfo.SERWeak, clean.SERWeak)
	}

	// A short packet at the same CFO barely notices (the drift across the
	// packet is small).
	short := drifted
	short.Symbols = 200
	shortRes, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	if shortRes.SERWeak >= cfo.SERWeak {
		t.Errorf("short packet should suffer less: %v vs %v", shortRes.SERWeak, cfo.SERWeak)
	}
}

func TestCFOValidation(t *testing.T) {
	bad := Config{Mod: QPSK, Symbols: 10, CFONormalized: 0.6}
	if _, err := Run(bad); err == nil {
		t.Error("CFO ≥ 0.5 cycles/symbol accepted")
	}
}
