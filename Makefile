# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test race fuzz bench bench-smoke figures ablations examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || { echo 'gofmt needed on:'; gofmt -l .; exit 1; }

# Repo-specific invariants (determinism, dB/linear units, cancellation,
# close-error, lock-copy) enforced by the custom analyzer suite; see the
# "Static analysis" section of README.md.
lint:
	$(GO) run ./cmd/siclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over every fuzz target (wire formats and parsers).
fuzz:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=10s ./internal/frame/
	$(GO) test -fuzz='^FuzzDecodeSchedule$$' -fuzztime=10s ./internal/frame/
	$(GO) test -fuzz='^FuzzReader$$' -fuzztime=10s ./internal/capture/
	$(GO) test -fuzz='^FuzzReadSnapshots$$' -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz='^FuzzDecodeReport$$' -fuzztime=10s ./internal/schedd/

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, archived as JSON (the CI artifact).
# Catches benchmarks that no longer compile or crash without paying for a
# statistically meaningful run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH_5.json

# Paper-scale regeneration of every figure + ablations into ./results.
figures:
	$(GO) run ./cmd/sicfig -all -out results

ablations:
	$(GO) run ./cmd/sicfig -ablations -out results

examples:
	@for e in quickstart uplink residential mesh adaptation live phy; do \
		echo "== examples/$$e =="; $(GO) run ./examples/$$e || exit 1; echo; \
	done

clean:
	rm -rf results BENCH_5.json
