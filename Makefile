# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test race fuzz bench bench-smoke bench-check figures ablations examples soak-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || { echo 'gofmt needed on:'; gofmt -l .; exit 1; }

# go vet first for the generic correctness checks, then the custom suite
# for repo-specific invariants (determinism, dB/linear units, cancellation,
# close-error, lock-copy, lock-hold, conn deadlines, metric discipline);
# see the "Static analysis" section of README.md for the split.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/siclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over every fuzz target (wire formats and parsers).
fuzz:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=10s ./internal/frame/
	$(GO) test -fuzz='^FuzzDecodeSchedule$$' -fuzztime=10s ./internal/frame/
	$(GO) test -fuzz='^FuzzReader$$' -fuzztime=10s ./internal/capture/
	$(GO) test -fuzz='^FuzzReadSnapshots$$' -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz='^FuzzDecodeReport$$' -fuzztime=10s ./internal/schedd/
	$(GO) test -fuzz='^FuzzLogParse$$' -fuzztime=10s ./internal/atomicio/
	$(GO) test -fuzz='^FuzzDecodeHandoff$$' -fuzztime=10s ./internal/session/
	$(GO) test -fuzz='^FuzzDecodeWALRecord$$' -fuzztime=10s ./internal/session/
	$(GO) test -fuzz='^FuzzFastReject$$' -fuzztime=10s ./internal/gateway/

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark, archived as JSON (the CI artifact).
# Catches benchmarks that no longer compile or crash without paying for a
# statistically meaningful run. BENCH_OUT defaults to the committed baseline;
# CI writes elsewhere (BENCH_OUT=BENCH_ci.json) and compares with bench-check.
BENCH_OUT ?= BENCH_10.json
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Compare a fresh bench-smoke artifact against the committed baseline:
# order-of-magnitude regression bound on the hot-path benches (including
# the batched Monte-Carlo figure drivers), plus the structural speedups
# the scheduler relies on: warm-vs-cold matching, and the warm 256-client
# re-solve crossover DESIGN.md documents (measured ~50×; 10× floor).
BENCH_AGAINST ?= BENCH_ci.json
bench-check:
	$(GO) run ./cmd/benchjson -against $(BENCH_AGAINST) -baseline BENCH_10.json \
		-benches BenchmarkMinCostPerfect64,BenchmarkScheduler64Clients,BenchmarkFig11TechniquesCDF,BenchmarkExtTriples -max-ratio 5 \
		-faster BenchmarkSolverWarm64:BenchmarkMinCostPerfect64:3 \
		-faster BenchmarkScheduler256ClientsWarm:BenchmarkScheduler256Clients:10

# Paper-scale regeneration of every figure + ablations into ./results.
figures:
	$(GO) run ./cmd/sicfig -all -out results

ablations:
	$(GO) run ./cmd/sicfig -ablations -out results

examples:
	@for e in quickstart uplink residential mesh adaptation live phy; do \
		echo "== examples/$$e =="; $(GO) run ./examples/$$e || exit 1; echo; \
	done

# A short race-enabled soak of the gateway tier: two shards, one abrupt
# kill and restart mid-run, fails on client-visible query errors.
soak-smoke:
	$(GO) run -race ./cmd/sicsoak -shards 2 -stations 24 -aps 3 \
		-duration 15s -kill 5s -revive 8s -seed 42

# BENCH_10.json is the committed baseline bench-check compares against
# (BENCH_6.json is the pre-batched-engine baseline, kept for history);
# clean removes only derived artifacts.
clean:
	rm -rf results BENCH_5.json BENCH_ci.json
