package sicmac_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	sicmac "repro"
)

// These tests exercise the public facade end to end — the same flows a
// downstream user would write after reading the README quickstart.

func TestPublicQuickstartFlow(t *testing.T) {
	ch := sicmac.Wifi20MHz
	pair := sicmac.Pair{S1: sicmac.FromDB(30), S2: sicmac.FromDB(15)}

	if g := pair.CapacityGain(ch); g < 1 || g > 2 {
		t.Errorf("capacity gain %v outside [1,2]", g)
	}
	if g := pair.Gain(ch, 12000); g <= 1 {
		t.Errorf("well-matched pair should gain from SIC, got %v", g)
	}

	// The ridge helpers agree with each other.
	weak := sicmac.FromDB(15)
	strong := sicmac.EqualRateStrongSNR(weak)
	if got := sicmac.BestPartnerSNR(strong); math.Abs(got-weak) > 1e-9 {
		t.Errorf("BestPartnerSNR(EqualRateStrongSNR(w)) = %v, want %v", got, weak)
	}
}

func TestPublicScheduler(t *testing.T) {
	clients := []sicmac.SchedClient{
		{ID: "a", SNR: sicmac.FromDB(32)},
		{ID: "b", SNR: sicmac.FromDB(16)},
		{ID: "c", SNR: sicmac.FromDB(28)},
		{ID: "d", SNR: sicmac.FromDB(13)},
		{ID: "e", SNR: sicmac.FromDB(22)},
	}
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: 12000, PowerControl: true}
	s, err := sicmac.NewSchedule(clients, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gain() < 1 {
		t.Errorf("schedule gain %v < 1", s.Gain())
	}
	g, err := sicmac.GreedySchedule(clients, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total > g.Total+1e-12 {
		t.Errorf("optimal (%v) worse than greedy (%v)", s.Total, g.Total)
	}
	// One solo slot for five clients.
	solo := 0
	for _, sl := range s.Slots {
		if sl.Mode == sicmac.ModeSolo {
			solo++
		}
	}
	if solo != 1 {
		t.Errorf("five clients need exactly one solo slot, got %d", solo)
	}
}

func TestPublicMatching(t *testing.T) {
	cost := [][]int64{
		{0, 1, 10, 10},
		{1, 0, 10, 10},
		{10, 10, 0, 1},
		{10, 10, 1, 0},
	}
	mate, total, err := sicmac.MinCostPerfectMatching(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || mate[0] != 1 || mate[2] != 3 {
		t.Errorf("mate=%v total=%d", mate, total)
	}
}

func TestPublicSimulation(t *testing.T) {
	stations := []sicmac.Station{
		{ID: 1, SNR: sicmac.FromDB(30), Backlog: 2},
		{ID: 2, SNR: sicmac.FromDB(15), Backlog: 2},
	}
	cfg := sicmac.DefaultMACConfig(sicmac.Wifi20MHz)
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: cfg.PacketBits}

	serial, err := sicmac.RunSerial(stations, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := sicmac.RunScheduled(stations, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scheduled.Duration >= serial.Duration {
		t.Errorf("scheduled (%v) should beat serial (%v) on a matched pair", scheduled.Duration, serial.Duration)
	}
	for _, id := range []uint32{1, 2} {
		if serial.Delivered[id] != 2 || scheduled.Delivered[id] != 2 {
			t.Errorf("station %d not drained: serial=%d scheduled=%d",
				id, serial.Delivered[id], scheduled.Delivered[id])
		}
	}
}

func TestPublicRates(t *testing.T) {
	if sicmac.Dot11b.Len() != 4 || sicmac.Dot11g.Len() != 8 {
		t.Error("rate table sizes wrong through the facade")
	}
	rf := sicmac.Dot11g.RateFunc()
	if rf(sicmac.FromDB(24)) != 54e6 {
		t.Error("rate func wrong through the facade")
	}
}

func TestPublicTrace(t *testing.T) {
	cfg := sicmac.DefaultTraceConfig(3)
	cfg.Days = 1
	snaps, err := sicmac.GenerateUploadTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("empty trace")
	}
	survey, err := sicmac.GenerateSurveyTrace(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(survey) != 10 {
		t.Fatalf("survey has %d points", len(survey))
	}
}

func TestPublicCrossAndDownload(t *testing.T) {
	x := sicmac.Cross{S: [2][2]float64{
		{sicmac.FromDB(30), sicmac.FromDB(10)},
		{sicmac.FromDB(10), sicmac.FromDB(30)},
	}}
	if x.Case() != sicmac.CaseA {
		t.Errorf("Case() = %v, want CaseA", x.Case())
	}
	d := sicmac.Download{S1: sicmac.FromDB(30), S2: sicmac.FromDB(15)}
	if g := d.Gain(sicmac.Wifi20MHz, 12000); g <= 0 {
		t.Errorf("download gain %v", g)
	}
}

func TestPublicSICReceiver(t *testing.T) {
	ch := sicmac.Wifi20MHz
	rx := sicmac.SICReceiver{Channel: ch}
	strong, weak := sicmac.FromDB(30), sicmac.FromDB(15)
	ok := rx.Decode([]sicmac.Arrival{
		{StationID: 1, SNR: strong, RateBps: sicmac.Capacity(ch.BandwidthHz, strong/(weak+1))},
		{StationID: 2, SNR: weak, RateBps: sicmac.Capacity(ch.BandwidthHz, weak)},
	})
	if !ok[0] || !ok[1] {
		t.Errorf("feasible pair not decoded: %v", ok)
	}
}

func TestPublicAdaptation(t *testing.T) {
	fading, err := sicmac.NewFading(18, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sicmac.AdaptTrialConfig{
		Table:     sicmac.Dot11g,
		Fading:    *fading,
		Frames:    2000,
		FrameBits: 12000,
		Seed:      1,
	}
	oracle, err := sicmac.RunAdaptation(&sicmac.OracleAdapter{Table: sicmac.Dot11g}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arf, err := sicmac.RunAdaptation(sicmac.NewARF(sicmac.Dot11g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if arf.Throughput > oracle.Throughput {
		t.Errorf("ARF (%v) beat the oracle (%v)", arf.Throughput, oracle.Throughput)
	}
}

func TestPublicDeployment(t *testing.T) {
	d := sicmac.DefaultDeployment()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Scenarios()); got != 5 {
		t.Errorf("Scenarios() = %d, want 5", got)
	}
}

func TestPublicBaseband(t *testing.T) {
	res, err := sicmac.RunBaseband(sicmac.BasebandConfig{
		Mod: sicmac.QPSK, SNRStrongDB: 30, SNRWeakDB: 12,
		Symbols: 20000, Pilots: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SERStrong > 0.01 {
		t.Errorf("strong SER %v too high at 30 dB", res.SERStrong)
	}
	if res.ResidualBeta <= 0 {
		t.Errorf("pilot-estimated channel should leave residual, got %v", res.ResidualBeta)
	}
	ser, err := sicmac.RunBasebandSingle(sicmac.QPSK, 9, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := sicmac.TheoreticalSER(sicmac.QPSK, sicmac.FromDB(9))
	if ser < want/3 || ser > want*3 {
		t.Errorf("single-user SER %v far from theory %v", ser, want)
	}
}

func TestPublicMesh(t *testing.T) {
	pl, err := sicmac.NewPathLoss(3.2, 1, 58)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sicmac.NewMeshChain([]float64{30, 4, 30}, pl, sicmac.Wifi20MHz)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := n.ScheduleFlow([]int{0, 1, 2, 3}, 12000, false)
	if err != nil {
		t.Fatal(err)
	}
	sic, err := n.ScheduleFlow([]int{0, 1, 2, 3}, 12000, true)
	if err != nil {
		t.Fatal(err)
	}
	if sic.Throughput <= serial.Throughput {
		t.Errorf("SIC mesh throughput %v should beat serial %v", sic.Throughput, serial.Throughput)
	}
}

func TestPublicChainAndPacking(t *testing.T) {
	snrs := []float64{sicmac.FromDB(8), sicmac.FromDB(35), sicmac.FromDB(25)}
	rates, err := sicmac.ChainRates(sicmac.Wifi20MHz, snrs)
	if err != nil || len(rates) != 3 {
		t.Fatalf("ChainRates: %v %v", rates, err)
	}
	g, err := sicmac.GenericPackingGain(sicmac.Wifi20MHz, 12000, snrs)
	if err != nil {
		t.Fatal(err)
	}
	if g < 1 {
		t.Errorf("generic packing gain %v below 1", g)
	}
}

// TestFacadeSurface touches every remaining facade entry point once, so the
// re-export layer cannot silently rot.
func TestFacadeSurface(t *testing.T) {
	ch := sicmac.NewChannel(20e6, 1e-10)
	if ch.BandwidthHz != 20e6 {
		t.Error("NewChannel")
	}
	if r := sicmac.ShannonRate(sicmac.Wifi20MHz)(3); r != sicmac.Capacity(20e6, 3) {
		t.Error("ShannonRate")
	}

	stations := []sicmac.Station{
		{ID: 1, SNR: sicmac.FromDB(30)},
		{ID: 2, SNR: sicmac.FromDB(15)},
	}
	qc := sicmac.QueuedConfig{
		Config:      sicmac.DefaultMACConfig(sicmac.Wifi20MHz),
		ArrivalRate: 500,
		Horizon:     0.02,
	}
	opts := sicmac.SchedOptions{Channel: sicmac.Wifi20MHz, PacketBits: qc.PacketBits}
	if _, err := sicmac.RunQueuedSerial(stations, qc); err != nil {
		t.Errorf("RunQueuedSerial: %v", err)
	}
	if _, err := sicmac.RunQueuedScheduled(stations, qc, opts); err != nil {
		t.Errorf("RunQueuedScheduled: %v", err)
	}

	emuSts := []sicmac.Station{
		{ID: 1, SNR: sicmac.FromDB(30), Backlog: 1},
		{ID: 2, SNR: sicmac.FromDB(15), Backlog: 1},
	}
	if _, err := sicmac.RunEmulation(context.Background(), emuSts, sicmac.EmuConfig{
		Channel: sicmac.Wifi20MHz, PacketBits: 12000,
	}); err != nil {
		t.Errorf("RunEmulation: %v", err)
	}

	clients := []sicmac.SchedClient{
		{ID: "a", SNR: sicmac.FromDB(30)},
		{ID: "b", SNR: sicmac.FromDB(15)},
	}
	if _, err := sicmac.PlanDrain(clients, []int{2, 1}, opts); err != nil {
		t.Errorf("PlanDrain: %v", err)
	}
	if _, err := sicmac.GroupsOfUpTo3(clients, opts); err != nil {
		t.Errorf("GroupsOfUpTo3: %v", err)
	}
	if _, err := sicmac.RunDownload([]sicmac.DownloadClient{
		{ID: 1, SNRs: []float64{sicmac.FromDB(24), sicmac.FromDB(12)}, Backlog: 2},
	}, sicmac.DefaultMACConfig(sicmac.Wifi20MHz)); err != nil {
		t.Errorf("RunDownload: %v", err)
	}

	pl, err := sicmac.NewPathLoss(3.2, 1, 58)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sicmac.NewMeshNetwork([]sicmac.Point{{}, {X: 20}}, pl, sicmac.Wifi20MHz); err != nil {
		t.Errorf("NewMeshNetwork: %v", err)
	}
	if _, err := sicmac.ChainTime(sicmac.Wifi20MHz, 12000, []float64{15, 3}); err != nil {
		t.Errorf("ChainTime: %v", err)
	}
	if _, err := sicmac.PackGeneric(sicmac.Wifi20MHz, 12000, []float64{15, 3, 1}); err != nil {
		t.Errorf("PackGeneric: %v", err)
	}
	if a := sicmac.NewAARF(sicmac.Dot11g); a == nil {
		t.Error("NewAARF")
	}
	if m := sicmac.NewMinstrel(sicmac.Dot11g, rand.New(rand.NewSource(1))); m == nil {
		t.Error("NewMinstrel")
	}
}
