package sicmac

// This file extends the public facade with the multihop mesh substrate
// (internal/mesh) and the K-signal SIC generalisations (internal/core).

import (
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/topo"
)

// MeshNetwork is a set of mesh routers over a propagation model, with
// min-ETT routing and SIC-aware TDMA link scheduling (§4.3).
type MeshNetwork = mesh.Network

// MeshLink is a directed mesh transmission.
type MeshLink = mesh.Link

// FlowSchedule is the steady-state TDMA schedule of one flow.
type FlowSchedule = mesh.FlowSchedule

// Point is a planar position in meters.
type Point = topo.Point

// NewMeshNetwork builds a mesh over explicit router positions.
func NewMeshNetwork(nodes []Point, pl PathLoss, ch Channel) (*MeshNetwork, error) {
	return mesh.NewNetwork(nodes, pl, ch)
}

// NewMeshChain builds a linear mesh with the given hop lengths in meters.
func NewMeshChain(hopLens []float64, pl PathLoss, ch Channel) (*MeshNetwork, error) {
	return mesh.NewChain(hopLens, pl, ch)
}

// ---- K-signal SIC (the paper's future-work generalisations) -----------

// ChainRates returns the K-stage SIC chain rates for concurrent
// transmitters at a common receiver; their sum equals the K-user sum
// capacity.
func ChainRates(ch Channel, snrs []float64) ([]float64, error) {
	return core.ChainRates(ch, snrs)
}

// ChainTime is the completion time of one packet from each of K concurrent
// transmitters through the SIC chain.
func ChainTime(ch Channel, bits float64, snrs []float64) (float64, error) {
	return core.ChainTime(ch, bits, snrs)
}

// GenericPacking is a §5.4 generic packing slot: one slow anchor packet
// plus parallel packet trains from other clients.
type GenericPacking = core.GenericPacking

// PackedTrain is one transmitter's train inside a generic packing slot.
type PackedTrain = core.PackedTrain

// PackGeneric builds a generic packing slot over K clients.
func PackGeneric(ch Channel, bits float64, snrs []float64) (GenericPacking, error) {
	return core.PackGeneric(ch, bits, snrs)
}

// GenericPackingGain compares the packed slot against serialising the same
// bit volume.
func GenericPackingGain(ch Channel, bits float64, snrs []float64) (float64, error) {
	return core.GenericPackingGain(ch, bits, snrs)
}
