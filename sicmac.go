// Package sicmac is a Go reproduction of "Successive Interference
// Cancellation: a back-of-the-envelope perspective" (HotNets 2010) and its
// journal extension "SIC: Carving out MAC Layer Opportunities" (IEEE TMC) by
// Sen, Santhapuri, Roy Choudhury and Nelakuditi.
//
// It provides, as one coherent library:
//
//   - the paper's SIC capacity and completion-time analysis (Pair, Cross,
//     Download) over an explicit PHY model (Channel, PathLoss),
//   - the §5 enabling techniques — power reduction, multirate packetization
//     and packet packing,
//   - the §6 SIC-aware upload scheduler, built on a from-scratch Edmonds
//     minimum-weight perfect-matching engine (NewSchedule, GreedySchedule),
//   - discrete 802.11 b/g/n rate tables for the §7 discrete-bitrate study,
//   - a discrete-event MAC simulator with an SIC receiver model (RunSerial,
//     RunScheduled) exchanging real wire-format frames,
//   - the synthetic trace substrate standing in for the paper's proprietary
//     RSSI traces, and
//   - experiment drivers regenerating every figure of the evaluation.
//
// The facade re-exports the internal packages' types by alias, so the
// library can be consumed through this single import:
//
//	import sicmac "repro"
//
//	ch := sicmac.Wifi20MHz
//	pair := sicmac.Pair{S1: sicmac.FromDB(30), S2: sicmac.FromDB(15)}
//	fmt.Println(pair.Gain(ch, 12000)) // SIC speedup for a 1500-byte packet
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package sicmac

import (
	"context"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/mac"
	"repro/internal/matching"
	"repro/internal/phy"
	"repro/internal/rates"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ---- PHY model -------------------------------------------------------

// Channel is a wireless channel: bandwidth plus noise floor.
type Channel = phy.Channel

// PathLoss is the log-distance propagation model.
type PathLoss = phy.PathLoss

// Wifi20MHz is a 20 MHz channel with the noise floor normalised to 1, so
// signal strengths are linear SNRs.
var Wifi20MHz = phy.Wifi20MHz

// NewChannel builds a channel from bandwidth (Hz) and noise power (W).
func NewChannel(bandwidthHz, noiseW float64) Channel { return phy.NewChannel(bandwidthHz, noiseW) }

// NewPathLoss builds a log-distance path-loss model with the SNR in dB at
// the reference distance.
func NewPathLoss(exponent, refDistance, refSNRdB float64) (PathLoss, error) {
	return phy.NewPathLoss(exponent, refDistance, refSNRdB)
}

// DB converts a linear power ratio to decibels.
func DB(linear float64) float64 { return phy.DB(linear) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return phy.FromDB(db) }

// Capacity is Shannon capacity: B·log2(1+SINR) bits/second.
func Capacity(bandwidthHz, sinr float64) float64 { return phy.Capacity(bandwidthHz, sinr) }

// ---- SIC analysis (the paper's Eqs. 1-10 and §5 techniques) ----------

// Pair is two transmitters sharing one SIC receiver (upload building block).
type Pair = core.Pair

// Cross is the two-transmitter/two-receiver building block (Fig. 5).
type Cross = core.Cross

// Download is the two-APs-to-one-client scenario (Fig. 8).
type Download = core.Download

// PowerReduction is the outcome of the §5.2 optimisation.
type PowerReduction = core.PowerReduction

// Packing is the outcome of §5.4 packet packing.
type Packing = core.Packing

// Case classifies Cross topologies per Fig. 5.
type Case = core.Case

// Fig. 5 case labels.
const (
	CaseA = core.CaseA
	CaseB = core.CaseB
	CaseC = core.CaseC
	CaseD = core.CaseD
)

// RateFunc maps linear SINR to an achievable bitrate.
type RateFunc = core.RateFunc

// ShannonRate is the ideal continuous-rate function for a channel.
func ShannonRate(ch Channel) RateFunc { return core.ShannonRate(ch) }

// EqualRateStrongSNR returns the stronger-signal SNR at which SIC gain
// peaks for a given weaker-signal SNR (the S1 ≈ S2² ridge).
func EqualRateStrongSNR(weak float64) float64 { return core.EqualRateStrongSNR(weak) }

// BestPartnerSNR is the inverse of EqualRateStrongSNR.
func BestPartnerSNR(strong float64) float64 { return core.BestPartnerSNR(strong) }

// ---- Discrete rate tables --------------------------------------------

// RateTable is a discrete 802.11-style bitrate table.
type RateTable = rates.Table

// Standard tables: 4 rates (b), 8 rates (g), up to 32 MCS combinations (n).
var (
	Dot11b = rates.Dot11b
	Dot11g = rates.Dot11g
	Dot11n = rates.Dot11n
)

// ---- SIC-aware scheduling (§6) ----------------------------------------

// SchedClient is one backlogged uploader presented to the scheduler.
type SchedClient = sched.Client

// SchedOptions configures the scheduler's cost model.
type SchedOptions = sched.Options

// Schedule is the scheduler output: slots, total time, baseline.
type Schedule = sched.Schedule

// Slot is one scheduled transmission (pair or solo).
type Slot = sched.Slot

// Mode says how a slot transmits.
type Mode = sched.Mode

// Slot modes.
const (
	ModeSerial = sched.ModeSerial
	ModeSIC    = sched.ModeSIC
	ModeSolo   = sched.ModeSolo
)

// SchedPlanner is the reusable form of the scheduler: it memoizes solo and
// pair costs across queries and warm-starts the matcher when only SNRs
// drifted. Hold one per AP for repeated scheduling of a mostly-stable
// client population; the one-shot entry points build a throwaway one.
type SchedPlanner = sched.Planner

// NewSchedPlanner returns a SchedPlanner computing costs under o.
func NewSchedPlanner(o SchedOptions) *SchedPlanner { return sched.NewPlanner(o) }

// NewSchedule computes the optimal SIC-aware schedule via minimum-weight
// perfect matching.
func NewSchedule(clients []SchedClient, o SchedOptions) (Schedule, error) {
	return sched.New(clients, o)
}

// GreedySchedule is the best-pair-first heuristic (the ablation baseline).
func GreedySchedule(clients []SchedClient, o SchedOptions) (Schedule, error) {
	return sched.Greedy(clients, o)
}

// MinCostPerfectMatching exposes the underlying Edmonds blossom solver:
// minimum-cost perfect matching on a complete graph given a symmetric
// non-negative cost matrix.
func MinCostPerfectMatching(cost [][]int64) (mate []int, total int64, err error) {
	return matching.MinCostPerfect(cost)
}

// ---- Discrete-event MAC simulation ------------------------------------

// Station is one uploading client in the simulator.
type Station = mac.Station

// MACConfig parameterises a simulation run.
type MACConfig = mac.Config

// MACResult summarises a simulation run.
type MACResult = mac.Result

// SICReceiver is the AP's strongest-first cancellation PHY model.
type SICReceiver = mac.SICReceiver

// Arrival is one concurrent signal at the SIC receiver.
type Arrival = mac.Arrival

// DefaultMACConfig returns 802.11g-flavoured timing over a channel.
func DefaultMACConfig(ch Channel) MACConfig { return mac.DefaultConfig(ch) }

// RunSerial simulates the CSMA-style serial baseline.
func RunSerial(stations []Station, cfg MACConfig) (MACResult, error) {
	return mac.RunSerial(stations, cfg)
}

// RunScheduled simulates the SIC-aware scheduled MAC.
func RunScheduled(stations []Station, cfg MACConfig, opts SchedOptions) (MACResult, error) {
	return mac.RunScheduled(stations, cfg, opts)
}

// ---- Trace substrate ---------------------------------------------------

// TraceSnapshot is one 15-minute AP/client-set observation.
type TraceSnapshot = trace.Snapshot

// TraceClient is one client observation within a snapshot.
type TraceClient = trace.ClientObs

// SurveyPoint is one location of the download SNR survey.
type SurveyPoint = trace.SurveyPoint

// TraceGenConfig parameterises the synthetic trace generator.
type TraceGenConfig = trace.GenConfig

// DefaultTraceConfig mirrors the paper's two-week collection.
func DefaultTraceConfig(seed int64) TraceGenConfig { return trace.DefaultGenConfig(seed) }

// GenerateUploadTrace produces the upload-evaluation snapshots.
func GenerateUploadTrace(cfg TraceGenConfig) ([]TraceSnapshot, error) {
	return trace.GenerateUpload(cfg)
}

// GenerateSurveyTrace produces the download-evaluation SNR survey.
func GenerateSurveyTrace(cfg TraceGenConfig, nLocations int) ([]SurveyPoint, error) {
	return trace.GenerateSurvey(cfg, nLocations)
}

// QueuedConfig extends MACConfig with a Poisson arrival process for the
// latency-vs-load study.
type QueuedConfig = mac.QueuedConfig

// QueuedResult reports per-packet delay statistics.
type QueuedResult = mac.QueuedResult

// RunQueuedSerial runs the serial CSMA baseline under Poisson arrivals.
func RunQueuedSerial(stations []Station, cfg QueuedConfig) (QueuedResult, error) {
	return mac.RunQueuedSerial(stations, cfg)
}

// RunQueuedScheduled runs the SIC-aware scheduled MAC under Poisson arrivals.
func RunQueuedScheduled(stations []Station, cfg QueuedConfig, opts SchedOptions) (QueuedResult, error) {
	return mac.RunQueuedScheduled(stations, cfg, opts)
}

// EmuConfig parameterises the live goroutine-based emulation.
type EmuConfig = emu.Config

// EmuResult summarises an emulation run.
type EmuResult = emu.Result

// FaultModel configures deterministic fault injection on the emulated
// radio medium: per-frame-type loss, payload corruption and station
// stalls, all derived from EmuConfig.Seed so runs reproduce exactly.
type FaultModel = emu.FaultModel

// FaultCounters aggregates failure/recovery accounting shared by the
// discrete-event MACs and the live emulator.
type FaultCounters = mac.FaultCounters

// RunEmulation executes the SIC-aware upload MAC as a live concurrent
// system: the AP and every station are goroutines exchanging marshalled
// frames (trigger-based uplink) over a simulated medium. Deterministic for
// a fixed topology; honours ctx cancellation.
func RunEmulation(ctx context.Context, stations []Station, cfg EmuConfig) (EmuResult, error) {
	return emu.Run(ctx, stations, cfg)
}

// DrainPlan is a multi-round schedule draining unequal per-client backlogs.
type DrainPlan = sched.DrainPlan

// PlanDrain plans the multi-round drain of the given backlogs; backlogs[i]
// belongs to clients[i]. Its Total equals the simulator's data airtime for
// the same scenario (see the cross-validation tests).
func PlanDrain(clients []SchedClient, backlogs []int, o SchedOptions) (DrainPlan, error) {
	return sched.Drain(clients, backlogs, o)
}

// DownloadClient is one client of the §4.1 enterprise download scenario.
type DownloadClient = mac.DownloadClient

// DownloadResult compares strongest-AP serial delivery against SIC pairing.
type DownloadResult = mac.DownloadResult

// RunDownload simulates the two-APs-to-one-client download strategies end
// to end (the paper's Fig. 8 conclusion: gains are tiny).
func RunDownload(clients []DownloadClient, cfg MACConfig) (DownloadResult, error) {
	return mac.RunDownload(clients, cfg)
}

// GroupSlot is one slot of a grouped (up to 3 concurrent clients) schedule.
type GroupSlot = sched.GroupSlot

// GroupSchedule is the grouped scheduler's output.
type GroupSchedule = sched.GroupSchedule

// GroupsOfUpTo3 plans a drain allowing slots of up to three concurrent
// uploaders decoded by a 3-stage SIC chain — the K-signal generalisation
// the paper leaves as future work. Grouping is greedy by airtime saved.
func GroupsOfUpTo3(clients []SchedClient, o SchedOptions) (GroupSchedule, error) {
	return sched.GroupsOfUpTo3(clients, o)
}
