// Command sicsched runs the paper's SIC-aware upload scheduler over a
// snapshot trace and reports per-snapshot schedules and gains.
//
// Usage:
//
//	tracegen -kind upload -days 1 -o day.jsonl
//	sicsched -trace day.jsonl -power-control
//	sicsched -trace day.jsonl -summary            # aggregate gains only
//
// For every snapshot with at least two clients it prints the chosen pairs,
// their transmission modes (SIC / serial / solo), the drain time and the
// gain over serial upload.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "upload snapshot trace (JSON Lines; see tracegen)")
		pktBits   = flag.Float64("packet-bits", 12000, "uplink packet size in bits")
		powerCtl  = flag.Bool("power-control", false, "enable §5.2 per-pair power reduction")
		multirate = flag.Bool("multirate", false, "enable §5.3 multirate packetization")
		summary   = flag.Bool("summary", false, "print only the aggregate gain distribution")
		maxPrint  = flag.Int("max-print", 20, "cap on per-snapshot listings (0 = unlimited)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "sicsched: -trace is required (generate one with tracegen)")
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	opts := sched.Options{
		Channel:      phy.Wifi20MHz,
		PacketBits:   *pktBits,
		PowerControl: *powerCtl,
		Multirate:    *multirate,
	}

	// Stream the trace one snapshot at a time: a multi-day trace never has
	// to fit in memory, and a corrupt line skips one record, not the run.
	sc := trace.NewSnapshotScanner(f)
	var gains []float64
	printed := 0
	for sc.Scan() {
		snap := sc.Snapshot()
		if len(snap.Clients) < 2 {
			continue
		}
		clients := make([]sched.Client, 0, len(snap.Clients))
		for _, c := range snap.Clients {
			if snr := phy.FromDB(c.SNRdB); snr > 0 {
				clients = append(clients, sched.Client{ID: c.ID, SNR: snr})
			}
		}
		if len(clients) < 2 {
			continue
		}
		s, err := sched.New(clients, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sicsched: snapshot %s@%d: %v (skipped)\n", snap.AP, snap.Unix, err)
			continue
		}
		gains = append(gains, s.Gain())
		if *summary || (*maxPrint > 0 && printed >= *maxPrint) {
			continue
		}
		printed++
		fmt.Printf("%s t=%ds  %d clients  drain %.3g ms  gain %.3f\n",
			snap.AP, snap.Unix, len(clients), s.Total*1e3, s.Gain())
		for _, sl := range s.Slots {
			switch sl.Mode {
			case sched.ModeSolo:
				fmt.Printf("    %-20s solo              %.3g ms\n", clients[sl.A].ID, sl.Time*1e3)
			default:
				fmt.Printf("    %-9s + %-9s %-7s scale=%.2f %.3g ms\n",
					clients[sl.A].ID, clients[sl.B].ID, sl.Mode, sl.WeakScale, sl.Time*1e3)
			}
		}
	}

	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if n := sc.Malformed(); n > 0 {
		fmt.Fprintf(os.Stderr, "sicsched: skipped %d malformed trace line(s)\n", n)
	}
	if len(gains) == 0 {
		fmt.Fprintln(os.Stderr, "sicsched: no schedulable snapshots in trace")
		os.Exit(1)
	}
	sum, err := stats.Summarize(gains)
	if err != nil {
		fatal(err)
	}
	e, err := stats.NewECDF(gains)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d snapshots scheduled: gain mean %.3f, median %.3f, p90 %.3f, max %.3f; >20%% gain in %.1f%%\n",
		sum.N, sum.Mean, sum.Median, sum.P90, sum.Max, 100*e.FracAbove(1.2))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sicsched: %v\n", err)
	os.Exit(1)
}
