// Command tracegen generates the synthetic RSSI traces standing in for the
// paper's proprietary Duke University data sets (see DESIGN.md,
// "Substitutions").
//
// Usage:
//
//	tracegen -kind upload -days 14 -o upload.jsonl
//	tracegen -kind survey -locations 100 -o survey.jsonl
//
// Output is JSON Lines: one topology snapshot (upload) or one surveyed
// client location (survey) per line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/trace"
)

func main() {
	var (
		kind      = flag.String("kind", "upload", `trace kind: "upload" (AP snapshots) or "survey" (per-location AP SNRs)`)
		out       = flag.String("o", "-", "output file (- for stdout)")
		seed      = flag.Int64("seed", 1, "random seed")
		days      = flag.Int("days", 14, "days of collection (upload)")
		aps       = flag.Int("aps", 5, "number of access points")
		spacing   = flag.Float64("spacing", 30, "AP grid spacing in meters")
		peak      = flag.Float64("peak", 8, "mean clients per AP at peak hours (upload)")
		locations = flag.Int("locations", 100, "surveyed client locations (survey)")
		summary   = flag.Bool("summary", false, "print trace statistics to stderr (upload)")
	)
	flag.Parse()

	cfg := trace.DefaultGenConfig(*seed)
	cfg.Days = *days
	cfg.APs = *aps
	cfg.APSpacing = *spacing
	cfg.PeakClients = *peak

	// File output is staged and renamed into place only after the whole
	// trace is written, so an interrupted run never leaves a truncated
	// file under the output name.
	var w io.Writer = os.Stdout
	var staged *atomicio.File
	if *out != "-" {
		f, err := atomicio.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Abort() // no-op once committed
		staged, w = f, f
	}

	switch *kind {
	case "upload":
		snaps, err := trace.GenerateUpload(cfg)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteSnapshots(w, snaps); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %d snapshots over %d day(s), %d APs\n", len(snaps), cfg.Days, cfg.APs)
		if *summary {
			st, err := trace.Analyze(snaps)
			if err != nil {
				fatal(err)
			}
			fmt.Fprint(os.Stderr, st)
		}
	case "survey":
		pts, err := trace.GenerateSurvey(cfg, *locations)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteSurvey(w, pts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %d surveyed locations against %d APs\n", len(pts), cfg.APs)
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}

	if staged != nil {
		if err := staged.Commit(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
