// Command sicsoak soak-tests a sharded gateway deployment end to end: it
// boots sicschedd shards and a sicgw gateway in-process, drives synthetic
// station report traffic and AP schedule queries against the gateway, and
// — on request — kills a shard abruptly mid-run and restarts it later, so
// the whole ejection/degradation/re-admission/rebalance cycle runs under
// load.
//
// Usage:
//
//	sicsoak -shards 2 -stations 48 -aps 4 -duration 30s \
//	        -kill 10s -revive 15s -seed 42
//
// The run is seeded: report SNR jitter comes from -seed, so two runs with
// the same flags drive identical traffic. At exit sicsoak prints
// client-observed SCHED latency quantiles, the clean/degraded/error query
// split, and the shards' cold-versus-migrated session totals — the number
// that shows whether rebalancing actually moved sessions instead of
// recreating them.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/schedd"
)

// soakStats is what the query loop accumulates.
type soakStats struct {
	queries  atomic.Int64
	clean    atomic.Int64
	degraded atomic.Int64
	empty    atomic.Int64
	errors   atomic.Int64
}

// queryReply is the subset of the gateway's SCHED reply the soak inspects.
type queryReply struct {
	Error    string `json:"error"`
	Degraded bool   `json:"degraded"`
	Clients  int    `json:"clients"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sicsoak: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		nShards     = flag.Int("shards", 2, "scheduler shards to boot")
		nStations   = flag.Int("stations", 48, "synthetic stations")
		nAPs        = flag.Int("aps", 4, "APs the stations spread across")
		duration    = flag.Duration("duration", 30*time.Second, "soak length")
		seed        = flag.Int64("seed", 1, "SNR jitter seed (same seed, same traffic)")
		reportEvery = flag.Duration("report-every", 25*time.Millisecond, "cadence of one full report round (one report per station)")
		queryEvery  = flag.Duration("query-every", 10*time.Millisecond, "cadence of AP schedule queries")
		replication = flag.Int("replication", 2, "shards holding each station's report stream")
		killAt      = flag.Duration("kill", 0, "kill one shard this long into the run (0 = never)")
		reviveAt    = flag.Duration("revive", 0, "restart the killed shard this long into the run (0 = never)")
		killIdx     = flag.Int("kill-shard", 0, "index of the shard to kill")
	)
	flag.Parse()
	if *killAt > 0 && (*killIdx < 0 || *killIdx >= *nShards) {
		fatalf("-kill-shard %d out of range for %d shards", *killIdx, *nShards)
	}
	if *reviveAt > 0 && (*killAt == 0 || *reviveAt <= *killAt) {
		fatalf("-revive must come after -kill")
	}

	// Boot the tier in-process: shards first, then the gateway over them.
	shards := make([]*schedd.Server, *nShards)
	var addrs []gateway.ShardAddr
	for i := range shards {
		name := fmt.Sprintf("shard-%d", i)
		s, err := schedd.Start(schedd.Config{UDPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", ShardID: name})
		if err != nil {
			fatalf("starting %s: %v", name, err)
		}
		shards[i] = s
		addrs = append(addrs, gateway.ShardAddr{
			Name: name, TCP: s.TCPAddr().String(), UDP: s.UDPAddr().String(),
		})
	}
	gw, err := gateway.Start(gateway.Config{
		UDPAddr:          "127.0.0.1:0",
		TCPAddr:          "127.0.0.1:0",
		Shards:           addrs,
		Replication:      *replication,
		ProbeInterval:    100 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		FailThreshold:    3,
		RecoverThreshold: 2,
		QueryDeadline:    time.Second,
	})
	if err != nil {
		fatalf("starting gateway: %v", err)
	}
	fmt.Printf("sicsoak: %d shards behind gateway %s (reports) / %s (queries), %d stations on %d APs for %v\n",
		*nShards, gw.UDPAddr(), gw.TCPAddr(), *nStations, *nAPs, *duration)

	reg := obs.NewRegistry()
	latency := reg.Histogram("sicsoak_query_seconds",
		"client-observed gateway SCHED latency", obs.DefLatencyBuckets(), nil)
	var stats soakStats
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	loadDone := make(chan struct{})
	go reportLoop(ctx, loadDone, gw.UDPAddr().String(), *nStations, *nAPs, *reportEvery, *seed)
	queryDone := make(chan struct{})
	go queryLoop(ctx, queryDone, gw.TCPAddr().String(), *nAPs, *queryEvery, latency, &stats)

	// The chaos timeline: abrupt kill, later restart on the same addresses.
	victimDead := false
	if *killAt > 0 {
		victim := shards[*killIdx]
		vTCP, vUDP := victim.TCPAddr().String(), victim.UDPAddr().String()
		select {
		case <-ctx.Done():
		case <-time.After(*killAt):
			victim.Kill()
			victimDead = true
			fmt.Printf("sicsoak: killed shard-%d at +%v\n", *killIdx, *killAt)
		}
		if *reviveAt > 0 && ctx.Err() == nil {
			select {
			case <-ctx.Done():
			case <-time.After(*reviveAt - *killAt):
				s, err := schedd.Start(schedd.Config{
					UDPAddr: vUDP, TCPAddr: vTCP,
					ShardID: fmt.Sprintf("shard-%d", *killIdx),
				})
				if err != nil {
					fatalf("reviving shard-%d: %v", *killIdx, err)
				}
				shards[*killIdx] = s
				victimDead = false
				fmt.Printf("sicsoak: revived shard-%d at +%v\n", *killIdx, *reviveAt)
			}
		}
	}

	<-ctx.Done()
	<-loadDone
	<-queryDone

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := gw.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "sicsoak: gateway shutdown: %v\n", err)
	}
	var cold, migrated int64
	for i, s := range shards {
		if victimDead && i == *killIdx {
			continue
		}
		cold += s.SessionEvents().Get("cold")
		migrated += s.SessionEvents().Get("handoff_in")
		dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.Shutdown(dctx)
		dcancel()
	}

	fmt.Printf("sicsoak: queries=%d clean=%d degraded=%d empty=%d errors=%d\n",
		stats.queries.Load(), stats.clean.Load(), stats.degraded.Load(),
		stats.empty.Load(), stats.errors.Load())
	fmt.Printf("sicsoak: latency p50<=%s p90<=%s p99<=%s\n",
		quantile(latency, 0.5), quantile(latency, 0.9), quantile(latency, 0.99))
	fmt.Printf("sicsoak: sessions cold=%d migrated=%d (shards), gateway epoch=%d\n",
		cold, migrated, gw.Epoch())
	fmt.Printf("sicsoak: gateway ingest: %s\n", gw.IngestEvents())
	fmt.Printf("sicsoak: gateway queries: %s\n", gw.QueryEvents())
	fmt.Printf("sicsoak: gateway tier: %s\n", gw.TierEvents())
	fmt.Printf("sicsoak: gateway rebalance: %s\n", gw.RebalanceEvents())

	if stats.queries.Load() == 0 || stats.errors.Load() > stats.queries.Load()/2 {
		fatalf("unhealthy run: %d queries, %d errors", stats.queries.Load(), stats.errors.Load())
	}
}

// reportLoop streams one report per station per round into the gateway.
// Station i sits on AP 1+i%aps with a stable SNR base plus seeded jitter,
// so the schedule content is deterministic for a given seed.
func reportLoop(ctx context.Context, done chan<- struct{}, addr string, stations, aps int, every time.Duration, seed int64) {
	defer close(done)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sicsoak: report socket: %v\n", err)
		return
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(seed))
	tick := time.NewTicker(every)
	defer tick.Stop()
	seq := uint32(0)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		seq++
		for i := 0; i < stations; i++ {
			r := schedd.Report{
				AP:         uint32(1 + i%aps),
				Station:    uint32(1000 + i),
				Seq:        seq,
				SNRMilliDB: int32(9000 + (i%32)*500 + rng.Intn(1000)),
			}
			buf, err := r.Marshal()
			if err != nil {
				fmt.Fprintf(os.Stderr, "sicsoak: marshal: %v\n", err)
				return
			}
			conn.Write(buf)
		}
	}
}

// queryLoop round-robins SCHED queries over the APs and records the
// client-observed outcome and latency of each.
func queryLoop(ctx context.Context, done chan<- struct{}, addr string, aps int, every time.Duration, latency *obs.Histogram, stats *soakStats) {
	defer close(done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for n := 0; ; n++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		ap := 1 + n%aps
		start := time.Now()
		reply, err := oneQuery(addr, ap)
		latency.Observe(time.Since(start).Seconds())
		stats.queries.Add(1)
		switch {
		case err != nil || reply.Error != "":
			stats.errors.Add(1)
		case reply.Clients == 0:
			stats.empty.Add(1)
		case reply.Degraded:
			stats.degraded.Add(1)
		default:
			stats.clean.Add(1)
		}
	}
}

// oneQuery runs a single SCHED round trip on a fresh connection, the way a
// real AP client would.
func oneQuery(addr string, ap int) (queryReply, error) {
	var out queryReply
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return out, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "SCHED %d\n", ap); err != nil {
		return out, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return out, fmt.Errorf("no reply: %w", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
		return out, err
	}
	return out, nil
}

// quantile renders a histogram quantile as a duration bound (the histogram
// answers with a bucket upper bound, hence "<=" at the call sites).
func quantile(h *obs.Histogram, q float64) string {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return "overflow"
	}
	return time.Duration(v * float64(time.Second)).String()
}
