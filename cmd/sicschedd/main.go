// Command sicschedd runs the live SIC scheduling daemon: stations stream
// SNR reports in over UDP, access points query schedules out over TCP.
//
// Usage:
//
//	sicschedd -udp 127.0.0.1:5600 -tcp 127.0.0.1:5601
//
// Query protocol (newline-delimited over TCP, one-line JSON replies):
//
//	SCHED <apID>            schedule for the AP's fresh clients
//	HEALTH                  uptime, table occupancy and serving counters
//	HANDOFF <base64>        install a session transferred from a peer daemon
//	MOVE <station> <addr>   hand a station's session off to a peer daemon
//	EPOCH <n>               record the gateway tier's ring epoch
//	QUIT                    close the connection
//
// With -shard the daemon serves as one scheduler shard behind a sicgw
// gateway: HEALTH responses carry the shard name, a per-boot instance
// nonce and the last gateway-pushed ring epoch, which the gateway uses for
// liveness probing and restart detection.
//
// With -data the daemon's client sessions are durable: every accepted
// report lands in a write-ahead log and the session table is periodically
// snapshotted, so a crashed or killed daemon restarts with its pre-crash
// scheduling context (and prints what recovery found).
//
// Every schedule reply records the degradation-ladder rung that produced it
// ("blossom", "greedy" or "serial"); under load the daemon degrades rather
// than stalls. On SIGINT/SIGTERM the daemon drains in-flight queries and
// prints the final counter flush — and per-rung latency quantiles — before
// exiting.
//
// With -admin the daemon additionally serves an HTTP endpoint:
//
//	/metrics       Prometheus text exposition (counters, ladder histograms)
//	/healthz       JSON liveness with table occupancy
//	/debug/pprof/  live profiling
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sched"
	"repro/internal/schedd"
)

func main() {
	var (
		udpAddr  = flag.String("udp", "127.0.0.1:5600", "UDP address for report ingest")
		tcpAddr  = flag.String("tcp", "127.0.0.1:5601", "TCP address for schedule/health queries")
		pktBits  = flag.Float64("packet-bits", 12000, "uplink packet size in bits")
		powerCtl = flag.Bool("power-control", false, "enable §5.2 per-pair power reduction")
		ttl      = flag.Duration("ttl", 30*time.Second, "client report staleness bound")
		maxCli   = flag.Int("max-clients", 64, "per-AP client table bound")
		blossomB = flag.Duration("blossom-budget", 50*time.Millisecond, "optimal-matching time budget")
		greedyB  = flag.Duration("greedy-budget", 10*time.Millisecond, "greedy-matching time budget")
		deadline = flag.Duration("query-deadline", 250*time.Millisecond, "overall per-query deadline")
		inflight = flag.Int("max-inflight", 32, "concurrent query bound before overload shedding")
		drain    = flag.Duration("drain", 5*time.Second, "graceful shutdown drain budget")
		admin    = flag.String("admin", "", "HTTP admin address for /metrics, /healthz and /debug/pprof (empty = disabled)")
		dataDir  = flag.String("data", "", "data directory for durable sessions (empty = memory-only)")
		hoTries  = flag.Int("handoff-attempts", 4, "AP-to-AP handoff attempts before degrading to a cold session")
		hoBack   = flag.Duration("handoff-backoff", 50*time.Millisecond, "initial handoff retry backoff (doubled, jittered, capped)")
		hoMax    = flag.Duration("handoff-max-backoff", time.Second, "handoff retry backoff cap")
		hoTime   = flag.Duration("handoff-timeout", 2*time.Second, "per-attempt handoff deadline")
		shardID  = flag.String("shard", "", "shard name when serving behind a sicgw gateway (echoed in HEALTH)")
	)
	flag.Parse()

	s, err := schedd.Start(schedd.Config{
		UDPAddr: *udpAddr,
		TCPAddr: *tcpAddr,
		Sched: sched.Options{
			Channel:      phy.Wifi20MHz,
			PacketBits:   *pktBits,
			PowerControl: *powerCtl,
		},
		TTL:               *ttl,
		MaxClients:        *maxCli,
		Budgets:           schedd.Budgets{Blossom: *blossomB, Greedy: *greedyB},
		QueryDeadline:     *deadline,
		MaxInflight:       *inflight,
		DataDir:           *dataDir,
		HandoffAttempts:   *hoTries,
		HandoffBackoff:    *hoBack,
		HandoffMaxBackoff: *hoMax,
		HandoffTimeout:    *hoTime,
		ShardID:           *shardID,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sicschedd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sicschedd: reports on udp %s, queries on tcp %s\n", s.UDPAddr(), s.TCPAddr())
	if *dataDir != "" {
		rec := s.SessionRecovery()
		fmt.Printf("sicschedd: sessions durable in %s: recovered %d from snapshot, replayed %d WAL records",
			*dataDir, rec.SnapshotSessions, rec.WALRecords)
		if rec.SnapshotCorrupt {
			fmt.Printf(" (snapshot corrupt, degraded to WAL)")
		}
		if rec.WALTorn {
			fmt.Printf(" (torn WAL tail truncated)")
		}
		fmt.Println()
	}

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = &http.Server{
			Addr: *admin,
			Handler: obs.AdminMux(s.Registry(), func() any {
				aps, clients := s.Occupancy()
				return map[string]any{"status": "ok", "aps": aps, "clients": clients}
			}),
		}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sicschedd: admin endpoint: %v\n", err)
			}
		}()
		fmt.Printf("sicschedd: admin endpoint on http://%s/metrics\n", *admin)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "sicschedd: %v, draining for up to %v\n", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sicschedd: %v\n", err)
		code = 1
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	fmt.Printf("sicschedd: final counters: %s\n", s.Counters())
	for _, lvl := range []schedd.Level{schedd.LevelBlossom, schedd.LevelGreedy, schedd.LevelSerial} {
		h := s.LadderHist(lvl)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("sicschedd: ladder %-7s attempts=%d p50<=%s p90<=%s p99<=%s\n",
			lvl, h.Count(), quantile(h, 0.5), quantile(h, 0.9), quantile(h, 0.99))
	}
	os.Exit(code)
}

// quantile renders a histogram quantile as a duration bound; the histogram
// answers with a bucket upper bound, hence the "<=" framing at the caller.
// An overflow-bucket answer (+Inf) means the rank fell past the last bound.
func quantile(h *obs.Histogram, q float64) string {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return "overflow"
	}
	return time.Duration(v * float64(time.Second)).String()
}
