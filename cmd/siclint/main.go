// Command siclint runs the repository's custom static-analysis suite
// (package internal/analysis) over the given package patterns and prints
// findings as "file:line:col: analyzer: message".
//
// Usage:
//
//	siclint [-only name,name] [-list] [patterns ...]
//
// With no patterns it analyzes ./... from the current directory. The exit
// code is 0 when the tree is clean, 1 when findings were reported, and 2
// when the packages could not be loaded (for example, when they do not
// build).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: siclint [-only name,name] [-list] [patterns ...]\n\nAnalyzers:\n")
		for _, az := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", az.Name, az.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All() {
			fmt.Printf("%-16s %s\n", az.Name, az.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, az := range analyzers {
			byName[az.Name] = az
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			az, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "siclint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, az)
		}
	}

	patterns := flag.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "siclint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siclint: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "siclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
