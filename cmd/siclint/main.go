// Command siclint runs the repository's custom static-analysis suite
// (package internal/analysis) over the given package patterns and prints
// findings as "file:line:col: analyzer: message", or — with -json — as
// one JSON object per line carrying file, line, col, analyzer, and
// message (the format CI turns into GitHub Actions annotations).
//
// Usage:
//
//	siclint [-only name,name] [-list] [-json] [patterns ...]
//
// With no patterns it analyzes ./... from the current directory. The exit
// code is 0 when the tree is clean, 1 when findings were reported, and 2
// when the packages could not be loaded (for example, when they do not
// build).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: siclint [-only name,name] [-list] [-json] [patterns ...]\n\nAnalyzers:\n")
		for _, az := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", az.Name, az.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All() {
			fmt.Printf("%-16s %s\n", az.Name, az.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, az := range analyzers {
			byName[az.Name] = az
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			az, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "siclint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, az)
		}
	}

	patterns := flag.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "siclint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siclint: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			rec := struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{relTo(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message}
			if err := enc.Encode(&rec); err != nil {
				fmt.Fprintf(os.Stderr, "siclint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "siclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relTo makes a finding path relative to the invocation directory when
// possible — what CI annotations need — and leaves it absolute otherwise.
func relTo(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
