package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFig6-8   \t12\t  98765432 ns/op\t1024 B/op\t7 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if b.Name != "BenchmarkFig6-8" || b.Iterations != 12 || b.NsPerOp != 98765432 ||
		b.BytesPerOp != 1024 || b.AllocsPerOp != 7 {
		t.Errorf("parsed %+v", b)
	}

	b, ok = parseLine("BenchmarkDecode 	 1000000	      1042 ns/op")
	if !ok || b.NsPerOp != 1042 || b.BytesPerOp != 0 {
		t.Errorf("plain line parsed as %+v (ok %v)", b, ok)
	}

	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro/internal/mc	0.8s",
		"goos: linux",
		"Benchmark",                 // no fields
		"BenchmarkX notanumber x y", // garbage iterations
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line %q accepted", line)
		}
	}
}
