package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFig6-8   \t12\t  98765432 ns/op\t1024 B/op\t7 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if b.Name != "BenchmarkFig6-8" || b.Iterations != 12 || b.NsPerOp != 98765432 ||
		b.BytesPerOp != 1024 || b.AllocsPerOp != 7 {
		t.Errorf("parsed %+v", b)
	}

	b, ok = parseLine("BenchmarkDecode 	 1000000	      1042 ns/op")
	if !ok || b.NsPerOp != 1042 || b.BytesPerOp != 0 {
		t.Errorf("plain line parsed as %+v (ok %v)", b, ok)
	}

	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro/internal/mc	0.8s",
		"goos: linux",
		"Benchmark",                 // no fields
		"BenchmarkX notanumber x y", // garbage iterations
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line %q accepted", line)
		}
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFig6-8":      "BenchmarkFig6",        // GOMAXPROCS suffix stripped
		"BenchmarkFig6-128":    "BenchmarkFig6",        // any core count
		"BenchmarkFig6":        "BenchmarkFig6",        // already bare
		"BenchmarkSolver-Warm": "BenchmarkSolver-Warm", // non-numeric suffix kept
		"-8":                   "-8",                   // leading dash is not a suffix
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckRegressions(t *testing.T) {
	fresh := map[string]Benchmark{
		"BenchmarkA":    {Name: "BenchmarkA-8", NsPerOp: 1000},
		"BenchmarkB":    {Name: "BenchmarkB-8", NsPerOp: 900},
		"BenchmarkWarm": {Name: "BenchmarkWarm-8", NsPerOp: 100},
	}
	baseline := map[string]Benchmark{
		"BenchmarkA": {Name: "BenchmarkA-4", NsPerOp: 500},
		"BenchmarkB": {Name: "BenchmarkB-4", NsPerOp: 100},
	}

	if fails := checkRegressions(fresh, baseline, []string{"BenchmarkA"}, 5, nil); len(fails) != 0 {
		t.Errorf("2x drift under a 5x limit flagged: %v", fails)
	}
	fails := checkRegressions(fresh, baseline, []string{"BenchmarkB"}, 5, nil)
	if len(fails) != 1 || !strings.Contains(fails[0], "regressed") {
		t.Errorf("9x regression not flagged: %v", fails)
	}
	fails = checkRegressions(fresh, baseline, []string{"BenchmarkMissing"}, 5, nil)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Errorf("missing benchmark not flagged: %v", fails)
	}

	if fails := checkRegressions(fresh, nil, nil, 5, []string{"BenchmarkWarm:BenchmarkA:3"}); len(fails) != 0 {
		t.Errorf("10x speedup failed a 3x floor: %v", fails)
	}
	fails = checkRegressions(fresh, nil, nil, 5, []string{"BenchmarkWarm:BenchmarkA:20"})
	if len(fails) != 1 || !strings.Contains(fails[0], "not 20.0x faster") {
		t.Errorf("insufficient speedup not flagged: %v", fails)
	}
	fails = checkRegressions(fresh, nil, nil, 5, []string{"malformed"})
	if len(fails) != 1 || !strings.Contains(fails[0], "bad -faster spec") {
		t.Errorf("malformed spec not flagged: %v", fails)
	}
}

func TestLoadArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	blob := `[{"name":"BenchmarkA-8","iterations":10,"ns_per_op":1234.5}]` + "\n"
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := m["BenchmarkA"]
	if !ok || b.NsPerOp != 1234.5 {
		t.Errorf("loaded %+v (present %v), want normalized key with ns 1234.5", b, ok)
	}
	if _, err := loadArtifact(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifact(path); err == nil {
		t.Error("corrupt artifact accepted")
	}
}
