// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact, so CI can archive benchmark numbers per
// commit without parsing test logs after the fact.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson -out BENCH.json
//
// Non-benchmark lines ("ok", "PASS", compile noise) are ignored. Each
// benchmark line becomes one record with its name, iteration count, ns/op
// and — when -benchmem is in effect — B/op and allocs/op. Output is sorted
// by name and written atomically, so a partially-failed bench run never
// leaves a truncated artifact behind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/atomicio"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkFig6-8   12   98765432 ns/op   1024 B/op   7 allocs/op
//
// ok is false for anything that is not a benchmark result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if b.NsPerOp == 0 && !strings.Contains(line, "ns/op") {
		return Benchmark{}, false
	}
	return b, true
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "output path (empty = stdout)")
	flag.Parse()

	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		return 1
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	if benches == nil {
		benches = []Benchmark{} // render an empty list, not JSON null
	}

	blob, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return 0
	}
	if err := atomicio.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: writing %s: %v\n", *out, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
	return 0
}
