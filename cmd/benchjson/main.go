// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact, so CI can archive benchmark numbers per
// commit without parsing test logs after the fact.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson -out BENCH.json
//
// Non-benchmark lines ("ok", "PASS", compile noise) are ignored. Each
// benchmark line becomes one record with its name, iteration count, ns/op
// and — when -benchmem is in effect — B/op and allocs/op. Output is sorted
// by name and written atomically, so a partially-failed bench run never
// leaves a truncated artifact behind.
//
// With -against, benchjson instead compares two previously-written
// artifacts and exits non-zero on regression:
//
//	benchjson -against BENCH_ci.json -baseline BENCH_6.json \
//	    -benches BenchmarkMinCostPerfect64,BenchmarkScheduler64Clients -max-ratio 5 \
//	    -faster BenchmarkSolverWarm64:BenchmarkMinCostPerfect64:3
//
// Each -benches name must appear in both files with the fresh ns/op at most
// max-ratio times the baseline's (a generous bound — CI machines are noisy;
// the point is catching order-of-magnitude regressions, not percent drift).
// Each -faster spec A:B:R asserts that within the fresh file benchmark A is
// at least R times faster than benchmark B — pinning a structural speedup
// (warm-started vs cold matching) rather than an absolute time. Benchmark
// names are matched after stripping the -<GOMAXPROCS> suffix.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/atomicio"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkFig6-8   12   98765432 ns/op   1024 B/op   7 allocs/op
//
// ok is false for anything that is not a benchmark result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if b.NsPerOp == 0 && !strings.Contains(line, "ns/op") {
		return Benchmark{}, false
	}
	return b, true
}

// normalizeName strips the trailing -<GOMAXPROCS> suffix go test appends,
// so artifacts from machines with different core counts compare.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadArtifact reads one benchjson output file into a map keyed by
// normalized benchmark name.
func loadArtifact(path string) (map[string]Benchmark, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Benchmark
	if err := json.Unmarshal(blob, &benches); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		m[normalizeName(b.Name)] = b
	}
	return m, nil
}

// checkRegressions compares fresh against baseline for each named
// benchmark, and enforces each faster spec within fresh. It returns an
// error message per failed check.
func checkRegressions(fresh, baseline map[string]Benchmark, benches []string, maxRatio float64, faster []string) []string {
	var fails []string
	for _, name := range benches {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f, okF := fresh[name]
		b, okB := baseline[name]
		switch {
		case !okF:
			fails = append(fails, fmt.Sprintf("%s missing from fresh artifact", name))
		case !okB:
			fails = append(fails, fmt.Sprintf("%s missing from baseline artifact", name))
		case b.NsPerOp <= 0:
			fails = append(fails, fmt.Sprintf("%s baseline ns/op is %v", name, b.NsPerOp))
		case f.NsPerOp > maxRatio*b.NsPerOp:
			fails = append(fails, fmt.Sprintf("%s regressed: %.0f ns/op vs baseline %.0f (limit %.1fx)",
				name, f.NsPerOp, b.NsPerOp, maxRatio))
		}
	}
	for _, spec := range faster {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			fails = append(fails, fmt.Sprintf("bad -faster spec %q (want A:B:ratio)", spec))
			continue
		}
		ratio, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || ratio <= 0 {
			fails = append(fails, fmt.Sprintf("bad -faster ratio in %q", spec))
			continue
		}
		a, okA := fresh[parts[0]]
		b, okB := fresh[parts[1]]
		switch {
		case !okA:
			fails = append(fails, fmt.Sprintf("%s missing from fresh artifact", parts[0]))
		case !okB:
			fails = append(fails, fmt.Sprintf("%s missing from fresh artifact", parts[1]))
		case a.NsPerOp <= 0:
			fails = append(fails, fmt.Sprintf("%s ns/op is %v", parts[0], a.NsPerOp))
		case a.NsPerOp*ratio > b.NsPerOp:
			fails = append(fails, fmt.Sprintf("%s (%.0f ns/op) is not %.1fx faster than %s (%.0f ns/op)",
				parts[0], a.NsPerOp, ratio, parts[1], b.NsPerOp))
		}
	}
	return fails
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "output path (empty = stdout)")
	against := flag.String("against", "", "check mode: fresh artifact to compare against -baseline")
	baselinePath := flag.String("baseline", "", "check mode: committed baseline artifact")
	benchList := flag.String("benches", "", "check mode: comma-separated benchmarks bounded by -max-ratio")
	maxRatio := flag.Float64("max-ratio", 5, "check mode: max fresh/baseline ns/op ratio per -benches entry")
	var fasterSpecs multiFlag
	flag.Var(&fasterSpecs, "faster", "check mode: A:B:R asserts A is R× faster than B in the fresh artifact (repeatable)")
	flag.Parse()

	if *against != "" {
		fresh, err := loadArtifact(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		baseline := map[string]Benchmark{}
		if *baselinePath != "" {
			if baseline, err = loadArtifact(*baselinePath); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				return 1
			}
		}
		var benches []string
		if *benchList != "" {
			benches = strings.Split(*benchList, ",")
		}
		fails := checkRegressions(fresh, baseline, benches, *maxRatio, fasterSpecs)
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %s\n", f)
		}
		if len(fails) > 0 {
			return 1
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d regression checks passed\n", len(benches)+len(fasterSpecs))
		return 0
	}

	var benches []Benchmark
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		return 1
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	if benches == nil {
		benches = []Benchmark{} // render an empty list, not JSON null
	}

	blob, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return 0
	}
	if err := atomicio.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: writing %s: %v\n", *out, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
	return 0
}
