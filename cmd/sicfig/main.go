// Command sicfig regenerates the paper's evaluation figures.
//
// Usage:
//
//	sicfig -all                     # every figure at paper scale
//	sicfig -fig fig6 -fig fig11     # selected figures
//	sicfig -ablations               # the DESIGN.md ablations
//	sicfig -quick -all              # reduced workload (CI-sized)
//	sicfig -out results             # where CSVs are written (default "results")
//
// Each figure prints its ASCII rendering and headline metrics to stdout and
// writes machine-readable CSVs into the output directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

// spreadMetrics re-runs a figure across extra seeds and annotates each
// metric with its min/max across seeds, so seed sensitivity is visible at a
// glance in metrics.json.
func spreadMetrics(r experiments.Runner, params experiments.Params, seeds int, res *experiments.Result) {
	mins := map[string]float64{}
	maxs := map[string]float64{}
	for k, v := range res.Metrics {
		mins[k], maxs[k] = v, v
	}
	for s := 1; s < seeds; s++ {
		p := params
		p.Seed = params.Seed + int64(s)
		other, err := r.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sicfig: %s seed %d: %v\n", r.ID, p.Seed, err)
			os.Exit(1)
		}
		for k, v := range other.Metrics {
			if v < mins[k] {
				mins[k] = v
			}
			if v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	for k := range mins {
		res.Metrics[k+"_seed_min"] = mins[k]
		res.Metrics[k+"_seed_max"] = maxs[k]
	}
}

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var (
		figs      figList
		all       = flag.Bool("all", false, "run every paper figure")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		quick     = flag.Bool("quick", false, "reduced workload (fewer trials, coarser grids)")
		out       = flag.String("out", "results", "directory for CSV outputs")
		trials    = flag.Int("trials", 0, "override Monte-Carlo trial count")
		seed      = flag.Int64("seed", 1, "random seed")
		seeds     = flag.Int("seeds", 1, "run each figure across this many seeds and report the metric spread")
		list      = flag.Bool("list", false, "list available figures and exit")
	)
	flag.Var(&figs, "fig", "figure id to run (repeatable), e.g. -fig fig6")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		for _, r := range experiments.Ablations() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	params := experiments.DefaultParams()
	if *quick {
		params = experiments.QuickParams()
	}
	params.Seed = *seed
	if *trials > 0 {
		params.Trials = *trials
	}

	var runners []experiments.Runner
	switch {
	case *all && *ablations:
		runners = append(experiments.All(), experiments.Ablations()...)
	case *all:
		runners = experiments.All()
	case *ablations:
		runners = experiments.Ablations()
	case len(figs) > 0:
		for _, id := range figs {
			r, ok := experiments.ByID(id)
			if !ok {
				for _, a := range experiments.Ablations() {
					if a.ID == id {
						r, ok = a, true
						break
					}
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "sicfig: unknown figure %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	default:
		fmt.Fprintln(os.Stderr, "sicfig: nothing to do; pass -all, -ablations or -fig <id> (see -list)")
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "sicfig: %v\n", err)
		os.Exit(1)
	}

	if *seeds < 1 {
		*seeds = 1
	}
	allMetrics := map[string]map[string]float64{}
	for _, r := range runners {
		res, err := r.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sicfig: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		if *seeds > 1 {
			spreadMetrics(r, params, *seeds, &res)
		}
		allMetrics[res.ID] = res.Metrics
		fmt.Printf("==== %s — %s ====\n%s\n", res.ID, res.Title, res.Text)
		for name, content := range res.Files {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "sicfig: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", path)
		}
		fmt.Println()
	}

	// Machine-readable metrics for EXPERIMENTS.md regeneration and CI diffs.
	blob, err := json.MarshalIndent(allMetrics, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sicfig: %v\n", err)
		os.Exit(1)
	}
	metricsPath := filepath.Join(*out, "metrics.json")
	if err := os.WriteFile(metricsPath, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sicfig: writing %s: %v\n", metricsPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", metricsPath)
}
