// Command sicfig regenerates the paper's evaluation figures under a
// supervised suite runner: every figure runs with panic isolation, a
// per-figure deadline and transient-failure retries, and each completed
// figure is checkpointed atomically so an interrupted suite resumes
// without recomputing finished work.
//
// Usage:
//
//	sicfig -all                     # every figure at paper scale
//	sicfig -fig fig6 -fig fig11     # selected figures
//	sicfig -ablations               # the DESIGN.md ablations
//	sicfig -quick -all              # reduced workload (CI-sized)
//	sicfig -out results             # where CSVs are written (default "results")
//	sicfig -all -timeout 10m        # bound the whole suite
//	sicfig -all -fig-timeout 2m     # bound each figure
//	sicfig -all -resume             # skip figures checkpointed by a previous run
//
// Each figure prints its ASCII rendering and headline metrics to stdout and
// writes machine-readable CSVs into the output directory. The suite always
// ends with a per-figure status report (ok / failed / timed-out /
// skipped-cached / skipped); the exit code is nonzero only when a figure
// actually failed or timed out. Ctrl-C cancels cleanly — rerun with
// -resume to continue where the suite left off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/atomicio"
	"repro/internal/experiments"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/runner"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		figs        figList
		all         = flag.Bool("all", false, "run every paper figure")
		ablations   = flag.Bool("ablations", false, "run the design-choice ablations")
		quick       = flag.Bool("quick", false, "reduced workload (fewer trials, coarser grids)")
		out         = flag.String("out", "results", "directory for CSV outputs")
		trials      = flag.Int("trials", 0, "override Monte-Carlo trial count")
		seed        = flag.Int64("seed", 1, "random seed")
		seeds       = flag.Int("seeds", 1, "run each figure across this many seeds and report the metric spread")
		list        = flag.Bool("list", false, "list available figures and exit")
		timeout     = flag.Duration("timeout", 0, "deadline for the whole suite (0 = none)")
		figTimeout  = flag.Duration("fig-timeout", 0, "deadline per figure (0 = none)")
		resume      = flag.Bool("resume", false, "serve figures from valid checkpoints instead of recomputing")
		keepGoing   = flag.Bool("keep-going", true, "continue past failed figures (set =false to stop at the first failure)")
		retries     = flag.Int("retries", 1, "retries per transiently failing figure")
		injectPanic = flag.Bool("inject-panic", false, "append an always-panicking figure (testing aid for the supervisor)")
		admin       = flag.String("admin", "", "HTTP admin address for /metrics during long suites (empty = disabled)")
	)
	flag.Var(&figs, "fig", "figure id to run (repeatable), e.g. -fig fig6")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		for _, r := range experiments.Ablations() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return 0
	}

	params := experiments.DefaultParams()
	if *quick {
		params = experiments.QuickParams()
	}
	params.Seed = *seed
	if *trials > 0 {
		params.Trials = *trials
	}

	// One registry spans the whole suite: per-figure gauges from the
	// runner, Monte-Carlo throughput from the sweeps the figures run.
	reg := obs.NewRegistry()
	params.MC = mc.NewMetrics(reg)
	if *admin != "" {
		adminSrv := &http.Server{Addr: *admin, Handler: obs.AdminMux(reg, nil)}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sicfig: admin endpoint: %v\n", err)
			}
		}()
		defer adminSrv.Close()
		fmt.Fprintf(os.Stderr, "sicfig: admin endpoint on http://%s/metrics\n", *admin)
	}

	var runners []experiments.Runner
	switch {
	case *all && *ablations:
		runners = append(experiments.All(), experiments.Ablations()...)
	case *all:
		runners = experiments.All()
	case *ablations:
		runners = experiments.Ablations()
	case len(figs) > 0:
		for _, id := range figs {
			r, ok := experiments.ByID(id)
			if !ok {
				for _, a := range experiments.Ablations() {
					if a.ID == id {
						r, ok = a, true
						break
					}
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "sicfig: unknown figure %q (try -list)\n", id)
				return 2
			}
			runners = append(runners, r)
		}
	case *injectPanic:
		// Allow a panic-only suite for exercising the supervisor.
	default:
		fmt.Fprintln(os.Stderr, "sicfig: nothing to do; pass -all, -ablations or -fig <id> (see -list)")
		return 2
	}
	if *injectPanic {
		runners = append(runners, experiments.Runner{
			ID:    "panicdemo",
			Title: "injected always-panicking figure (testing aid)",
			Run: func(context.Context, experiments.Params) (experiments.Result, error) {
				panic("injected panic (-inject-panic)")
			},
		})
	}

	// Ctrl-C / SIGTERM cancels the suite; completed figures stay
	// checkpointed for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, err := runner.Run(ctx, runners, runner.Options{
		Params:     params,
		Seeds:      *seeds,
		OutDir:     *out,
		FigTimeout: *figTimeout,
		Retries:    *retries,
		KeepGoing:  *keepGoing,
		Resume:     *resume,
		Log:        os.Stderr,
		Registry:   reg,
		OnResult: func(res experiments.Result, cached bool) {
			if cached {
				fmt.Printf("==== %s — %s ==== (from checkpoint)\n", res.ID, res.Title)
				return
			}
			fmt.Printf("==== %s — %s ====\n%s\n", res.ID, res.Title, res.Text)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sicfig: %v\n", err)
		return 1
	}

	// Machine-readable metrics for EXPERIMENTS.md regeneration and CI
	// diffs, covering every ok or checkpointed figure of this invocation.
	blob, err := json.MarshalIndent(rep.Metrics, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sicfig: %v\n", err)
		return 1
	}
	metricsPath := filepath.Join(*out, "metrics.json")
	if err := atomicio.WriteFile(metricsPath, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sicfig: writing %s: %v\n", metricsPath, err)
		return 1
	}
	fmt.Printf("wrote %s\n\n", metricsPath)

	fmt.Print(rep.Render())
	if rep.Failed() > 0 {
		return 1
	}
	return 0
}
