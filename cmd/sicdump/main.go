// Command sicdump prints a capture log (produced by sicsim -capture) in a
// tcpdump-like one-line-per-frame format, decoding schedule payloads.
//
// Usage:
//
//	sicsim -stations 30,15 -backlog 2 -capture run.sicc
//	sicdump run.sicc
//	sicdump -type schedule run.sicc    # only schedule announcements
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/capture"
	"repro/internal/frame"
)

func main() {
	var (
		typeFilter = flag.String("type", "", `only frames of this type ("data", "ack", "poll", "schedule")`)
		verbose    = flag.Bool("v", false, "decode schedule payload entries")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sicdump [-type t] [-v] <capture file>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	r, err := capture.NewReader(f)
	if err != nil {
		fatal(err)
	}
	count := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fatal(err)
		}
		fr, err := rec.Decode()
		if err != nil {
			fmt.Printf("%12.3f ms  <undecodable frame: %v>\n", float64(rec.TimestampNanos)/1e6, err)
			continue
		}
		if *typeFilter != "" && fr.Type.String() != *typeFilter {
			continue
		}
		count++
		dst := fmt.Sprint(fr.Dst)
		if fr.Dst == frame.Broadcast {
			dst = "*"
		}
		fmt.Printf("%12.3f ms  %-8s %4d -> %-4s seq=%-5d dur=%dus len=%d\n",
			float64(rec.TimestampNanos)/1e6, fr.Type, fr.Src, dst, fr.Seq,
			fr.DurationUS, len(fr.Payload))
		if *verbose && fr.Type == frame.TypeSchedule {
			entries, err := frame.DecodeSchedule(fr.Payload)
			if err != nil {
				fmt.Printf("              <bad schedule payload: %v>\n", err)
				continue
			}
			for _, e := range entries {
				b := fmt.Sprint(e.B)
				if e.B == frame.Broadcast {
					b = "solo"
				}
				mode := "serial"
				if e.Concurrent {
					mode = "sic"
				}
				if e.Multirate {
					mode = "sic+multirate"
				}
				fmt.Printf("              slot %d+%s %s scale=%.2f\n", e.A, b, mode, e.WeakScale())
			}
		}
	}
	fmt.Fprintf(os.Stderr, "sicdump: %d frame(s)\n", count)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sicdump: %v\n", err)
	os.Exit(1)
}
