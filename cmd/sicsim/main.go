// Command sicsim drives the discrete-event MAC simulator: it drains a
// configurable upload scenario under both the serial CSMA baseline and the
// SIC-aware scheduled MAC, and reports the end-to-end comparison.
//
// Usage:
//
//	sicsim -stations 30,15,28,14 -backlog 8
//	sicsim -stations 30,15 -residual 0.02 -power-control
//
// -stations takes per-station SNRs at the AP in dB.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/capture"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

func main() {
	var (
		stationsArg = flag.String("stations", "32,16,28,13", "comma-separated station SNRs at the AP (dB)")
		backlog     = flag.Int("backlog", 4, "data frames per station")
		pktBits     = flag.Float64("packet-bits", 12000, "data frame size in bits")
		residual    = flag.Float64("residual", 0, "fraction of cancelled power left as interference (imperfect SIC)")
		powerCtl    = flag.Bool("power-control", false, "enable per-pair power reduction in the scheduler")
		seed        = flag.Int64("seed", 1, "backoff randomness seed")
		capturePath = flag.String("capture", "", "record the scheduled run's frames to this file (inspect with sicdump)")
	)
	flag.Parse()

	var stations []mac.Station
	for i, s := range strings.Split(*stationsArg, ",") {
		db, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("parsing -stations entry %q: %w", s, err))
		}
		stations = append(stations, mac.Station{
			ID:      uint32(i + 1),
			SNR:     phy.FromDB(db),
			Backlog: *backlog,
		})
	}

	cfg := mac.DefaultConfig(phy.Wifi20MHz)
	cfg.PacketBits = *pktBits
	cfg.Residual = *residual
	cfg.Seed = *seed
	opts := sched.Options{Channel: cfg.Channel, PacketBits: *pktBits, PowerControl: *powerCtl}

	if *capturePath != "" {
		f, err := os.Create(*capturePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err := capture.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "sicsim: captured %d frame(s) to %s\n", w.Count(), *capturePath)
		}()
		cfg.Capture = w
	}

	serialCfg := cfg
	serialCfg.Capture = nil // the capture records only the scheduled run
	serial, err := mac.RunSerial(stations, serialCfg)
	if err != nil {
		fatal(fmt.Errorf("serial MAC: %w", err))
	}
	scheduled, err := mac.RunScheduled(stations, cfg, opts)
	if err != nil {
		fatal(fmt.Errorf("scheduled MAC: %w", err))
	}

	total := 0
	for _, s := range stations {
		total += s.Backlog
	}
	fmt.Printf("scenario: %d stations × %d frames (%g-bit frames)\n", len(stations), *backlog, *pktBits)
	fmt.Printf("%-18s %12s %10s %10s %9s %8s\n", "MAC", "drain (ms)", "data (ms)", "ovhd (ms)", "collide", "fail")
	fmt.Printf("%-18s %12.3f %10.3f %10.3f %9d %8d\n", "serial CSMA",
		serial.Duration*1e3, serial.AirtimeData*1e3, serial.AirtimeOverhead*1e3, serial.Collisions, serial.DecodeFailures)
	fmt.Printf("%-18s %12.3f %10.3f %10.3f %9d %8d\n", "SIC scheduled",
		scheduled.Duration*1e3, scheduled.AirtimeData*1e3, scheduled.AirtimeOverhead*1e3, scheduled.Collisions, scheduled.DecodeFailures)
	fmt.Printf("speedup: %.3f×  (rounds=%d, residual=%g)\n",
		serial.Duration/scheduled.Duration, scheduled.Rounds, *residual)
	for _, s := range stations {
		if scheduled.Delivered[s.ID] != *backlog {
			fatal(fmt.Errorf("station %d delivered %d/%d frames", s.ID, scheduled.Delivered[s.ID], *backlog))
		}
	}
	_ = total
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sicsim: %v\n", err)
	os.Exit(1)
}
