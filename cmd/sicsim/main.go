// Command sicsim drives the discrete-event MAC simulator: it drains a
// configurable upload scenario under both the serial CSMA baseline and the
// SIC-aware scheduled MAC, and reports the end-to-end comparison. With
// -emu (implied by any fault flag) it additionally drains the same
// scenario through the live goroutine emulator, optionally over a faulty
// medium.
//
// Usage:
//
//	sicsim -stations 30,15,28,14 -backlog 8
//	sicsim -stations 30,15 -residual 0.02 -power-control
//	sicsim -stations 30,15,28,14 -emu -loss 0.05 -corrupt 0.02 -stall 0.1
//
// -stations takes per-station SNRs at the AP in dB. -loss, -corrupt and
// -stall are probabilities in [0,1]; faults are injected deterministically
// from -seed, so a run is reproducible bit for bit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/capture"
	"repro/internal/emu"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sched"
)

func main() {
	var (
		stationsArg = flag.String("stations", "32,16,28,13", "comma-separated station SNRs at the AP (dB)")
		backlog     = flag.Int("backlog", 4, "data frames per station")
		pktBits     = flag.Float64("packet-bits", 12000, "data frame size in bits")
		residual    = flag.Float64("residual", 0, "fraction of cancelled power left as interference (imperfect SIC)")
		powerCtl    = flag.Bool("power-control", false, "enable per-pair power reduction in the scheduler")
		seed        = flag.Int64("seed", 1, "backoff and fault-injection randomness seed")
		capturePath = flag.String("capture", "", "record the scheduled run's frames to this file (inspect with sicdump)")
		emuRun      = flag.Bool("emu", false, "also drain the scenario through the live goroutine emulator")
		loss        = flag.Float64("loss", 0, "emulator medium: per-frame loss probability (implies -emu)")
		corrupt     = flag.Float64("corrupt", 0, "emulator medium: per-frame payload bit-flip probability (implies -emu)")
		stall       = flag.Float64("stall", 0, "emulator stations: per-trigger stall probability (implies -emu)")
		stallSlots  = flag.Int("stall-slots", 0, "emulator stations: frames ignored per stall (0 = default)")
	)
	flag.Parse()

	var stations []mac.Station
	for i, s := range strings.Split(*stationsArg, ",") {
		db, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("parsing -stations entry %q: %w", s, err))
		}
		stations = append(stations, mac.Station{
			ID:      uint32(i + 1),
			SNR:     phy.FromDB(db),
			Backlog: *backlog,
		})
	}

	cfg := mac.DefaultConfig(phy.Wifi20MHz)
	cfg.PacketBits = *pktBits
	cfg.Residual = *residual
	cfg.Seed = *seed
	opts := sched.Options{Channel: cfg.Channel, PacketBits: *pktBits, PowerControl: *powerCtl}

	// The capture file is staged and only renamed into place once the
	// scheduled run has completed and the writer flushed, so a crash or
	// mid-run failure never leaves a truncated capture; Close errors
	// surface through Commit instead of being dropped.
	var captureFile *atomicio.File
	var captureW *capture.Writer
	if *capturePath != "" {
		f, err := atomicio.Create(*capturePath)
		if err != nil {
			fatal(err)
		}
		defer f.Abort() // no-op once committed
		w, err := capture.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		captureFile, captureW = f, w
		cfg.Capture = w
	}

	serialCfg := cfg
	serialCfg.Capture = nil // the capture records only the scheduled run
	serial, err := mac.RunSerial(stations, serialCfg)
	if err != nil {
		fatal(fmt.Errorf("serial MAC: %w", err))
	}
	scheduled, err := mac.RunScheduled(stations, cfg, opts)
	if err != nil {
		fatal(fmt.Errorf("scheduled MAC: %w", err))
	}
	if captureFile != nil {
		if err := captureW.Flush(); err != nil {
			fatal(fmt.Errorf("flushing capture: %w", err))
		}
		if err := captureFile.Commit(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sicsim: captured %d frame(s) to %s\n", captureW.Count(), *capturePath)
	}

	total := 0
	for _, s := range stations {
		total += s.Backlog
	}
	fmt.Printf("scenario: %d stations × %d frames (%g-bit frames)\n", len(stations), *backlog, *pktBits)
	fmt.Printf("%-18s %12s %10s %10s %9s %8s\n", "MAC", "drain (ms)", "data (ms)", "ovhd (ms)", "collide", "fail")
	fmt.Printf("%-18s %12.3f %10.3f %10.3f %9d %8d\n", "serial CSMA",
		serial.Duration*1e3, serial.AirtimeData*1e3, serial.AirtimeOverhead*1e3, serial.Collisions, serial.DecodeFailures)
	fmt.Printf("%-18s %12.3f %10.3f %10.3f %9d %8d\n", "SIC scheduled",
		scheduled.Duration*1e3, scheduled.AirtimeData*1e3, scheduled.AirtimeOverhead*1e3, scheduled.Collisions, scheduled.DecodeFailures)
	fmt.Printf("speedup: %.3f×  (rounds=%d, residual=%g)\n",
		serial.Duration/scheduled.Duration, scheduled.Rounds, *residual)

	// Every backlogged frame must be delivered — in aggregate and per
	// station (a per-station check alone would miss a counter that leaks
	// deliveries between stations; an aggregate check alone would miss a
	// swap).
	delivered := 0
	for _, s := range stations {
		delivered += scheduled.Delivered[s.ID]
		if scheduled.Delivered[s.ID] != *backlog {
			fatal(fmt.Errorf("station %d delivered %d/%d frames", s.ID, scheduled.Delivered[s.ID], *backlog))
		}
	}
	if delivered != total {
		fatal(fmt.Errorf("scheduled MAC delivered %d/%d frames in aggregate", delivered, total))
	}

	// Any explicitly set fault flag implies -emu, including out-of-range
	// values: the emulator's validation rejects them instead of the flag
	// being silently ignored.
	if *emuRun || *loss != 0 || *corrupt != 0 || *stall != 0 {
		runEmulator(stations, cfg, opts, *loss, *corrupt, *stall, *stallSlots, total)
	}
}

// runEmulator drains the scenario through the live goroutine emulator over
// a (possibly faulty) medium and reports drain airtime plus the failure
// counters.
func runEmulator(stations []mac.Station, cfg mac.Config, opts sched.Options,
	loss, corrupt, stall float64, stallSlots, total int) {

	ecfg := emu.Config{
		Channel:    cfg.Channel,
		PacketBits: cfg.PacketBits,
		Residual:   cfg.Residual,
		Sched:      opts,
		Seed:       cfg.Seed,
		Faults: emu.FaultModel{
			Loss:       loss,
			Corrupt:    corrupt,
			Stall:      stall,
			StallSlots: stallSlots,
		},
	}
	res, err := emu.Run(context.Background(), stations, ecfg)
	if err != nil {
		fatal(fmt.Errorf("live emulator: %w", err))
	}
	delivered := 0
	for _, s := range stations {
		delivered += res.Delivered[s.ID]
	}
	fmt.Printf("\nlive emulator (loss=%g corrupt=%g stall=%g seed=%d):\n", loss, corrupt, stall, cfg.Seed)
	fmt.Printf("  drain %.3f ms  (data %.3f ms, overhead %.3f ms), %d rounds\n",
		(res.AirtimeData+res.AirtimeOverhead)*1e3, res.AirtimeData*1e3, res.AirtimeOverhead*1e3, res.Rounds)
	fmt.Printf("  delivered %d/%d frames, decode failures %d\n", delivered, total, res.DecodeFailures)
	fmt.Printf("  faults: %d frames lost, %d CRC rejects, %d retries, %d timed-out slots, %d stalls\n",
		res.Faults.FramesLost, res.Faults.CRCRejects, res.Faults.Retries,
		res.Faults.TimedOutSlots, res.Faults.Stalls)
	if !res.Drained {
		fatal(fmt.Errorf("live emulator gave up before draining: %d/%d frames delivered", delivered, total))
	}
	if delivered != total {
		fatal(fmt.Errorf("live emulator delivered %d/%d frames", delivered, total))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sicsim: %v\n", err)
	os.Exit(1)
}
