// Command sicgw runs the fault-tolerant gateway tier in front of sicschedd
// scheduler shards: stations stream SNR reports at one UDP address, access
// points query one TCP address, and the gateway filters, deduplicates,
// replicates and fans out across a consistent-hash ring of shards.
//
// Usage:
//
//	sicgw -udp 127.0.0.1:5700 -tcp 127.0.0.1:5701 \
//	      -shard a=127.0.0.1:5601,127.0.0.1:5600 \
//	      -shard b=127.0.0.1:5611,127.0.0.1:5610
//
// Each -shard names one sicschedd started with the matching -shard flag;
// the first address is its TCP query listener, the second its UDP ingest.
//
// Query protocol (newline-delimited over TCP, one-line JSON replies):
//
//	SCHED <apID>   merged schedule across shards, with a degraded flag
//	HEALTH         tier health: ring epoch, shard liveness, counters
//	QUIT           close the connection
//
// The gateway probes every shard's HEALTH endpoint continuously. A shard
// that misses -fail-threshold consecutive probes is ejected from the live
// ring (its stations re-home to their replicas); once it answers
// -recover-threshold consecutive probes it is re-admitted and its
// sessions migrate back via MOVE handoffs. Schedule queries hedge to
// replica shards when a primary is slow, and replies carry degraded=true
// whenever any part of the answer may be incomplete.
//
// With -admin the gateway additionally serves an HTTP endpoint:
//
//	/metrics       Prometheus text exposition (tier counters, latencies)
//	/healthz       JSON liveness with ring epoch and shard states
//	/debug/pprof/  live profiling
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
)

func main() {
	var shards []gateway.ShardAddr
	flag.Func("shard", "scheduler shard as name=tcpAddr,udpAddr (repeatable)", func(v string) error {
		name, addrs, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want name=tcpAddr,udpAddr, got %q", v)
		}
		tcp, udp, ok := strings.Cut(addrs, ",")
		if !ok || name == "" || tcp == "" || udp == "" {
			return fmt.Errorf("want name=tcpAddr,udpAddr, got %q", v)
		}
		shards = append(shards, gateway.ShardAddr{Name: name, TCP: tcp, UDP: udp})
		return nil
	})
	var (
		udpAddr     = flag.String("udp", "127.0.0.1:5700", "UDP address for report ingest")
		tcpAddr     = flag.String("tcp", "127.0.0.1:5701", "TCP address for schedule/health queries")
		replication = flag.Int("replication", 2, "shards holding each station's report stream")
		vnodes      = flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "shard health probe cadence")
		probeTime   = flag.Duration("probe-timeout", 250*time.Millisecond, "per-probe deadline")
		failThresh  = flag.Int("fail-threshold", 3, "consecutive probe failures before ejection")
		recThresh   = flag.Int("recover-threshold", 2, "consecutive probe successes before re-admission")
		queryDL     = flag.Duration("query-deadline", 500*time.Millisecond, "overall merged-query deadline")
		shardDL     = flag.Duration("shard-deadline", 150*time.Millisecond, "per-shard query attempt deadline")
		retries     = flag.Int("shard-retries", 2, "query attempts per shard before giving up")
		backoff     = flag.Duration("retry-backoff", 20*time.Millisecond, "initial shard retry backoff (doubled, capped)")
		hedgeDelay  = flag.Duration("hedge-delay", 30*time.Millisecond, "silence before hedging a query to a replica shard")
		inflight    = flag.Int("max-inflight", 64, "concurrent query bound before overload shedding")
		drain       = flag.Duration("drain", 5*time.Second, "graceful shutdown drain budget")
		admin       = flag.String("admin", "", "HTTP admin address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	)
	flag.Parse()
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "sicgw: at least one -shard name=tcpAddr,udpAddr is required")
		os.Exit(2)
	}

	gw, err := gateway.Start(gateway.Config{
		UDPAddr:          *udpAddr,
		TCPAddr:          *tcpAddr,
		Shards:           shards,
		Replication:      *replication,
		VNodes:           *vnodes,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     *probeTime,
		FailThreshold:    *failThresh,
		RecoverThreshold: *recThresh,
		QueryDeadline:    *queryDL,
		ShardDeadline:    *shardDL,
		ShardRetries:     *retries,
		RetryBackoff:     *backoff,
		HedgeDelay:       *hedgeDelay,
		MaxInflight:      *inflight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sicgw: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sicgw: reports on udp %s, queries on tcp %s, %d shards (replication %d)\n",
		gw.UDPAddr(), gw.TCPAddr(), len(shards), *replication)

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = &http.Server{
			Addr: *admin,
			Handler: obs.AdminMux(gw.Registry(), func() any {
				return map[string]any{
					"status":   "ok",
					"epoch":    gw.Epoch(),
					"stations": gw.Stations(),
					"live":     gw.LiveShards(),
				}
			}),
		}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sicgw: admin endpoint: %v\n", err)
			}
		}()
		fmt.Printf("sicgw: admin endpoint on http://%s/metrics\n", *admin)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "sicgw: %v, draining for up to %v\n", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := gw.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sicgw: %v\n", err)
		code = 1
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	fmt.Printf("sicgw: final epoch %d, live shards %v\n", gw.Epoch(), gw.LiveShards())
	fmt.Printf("sicgw: ingest: %s\n", gw.IngestEvents())
	fmt.Printf("sicgw: drops: %s\n", gw.DropEvents())
	fmt.Printf("sicgw: queries: %s\n", gw.QueryEvents())
	fmt.Printf("sicgw: tier: %s\n", gw.TierEvents())
	fmt.Printf("sicgw: rebalance: %s\n", gw.RebalanceEvents())
	os.Exit(code)
}
