package sicmac_test

import (
	"fmt"

	sicmac "repro"
)

// The paper's Fig. 1 building block: two uploaders at the "twice in dB"
// sweet spot complete two packets 1.5× faster with SIC.
func ExamplePair() {
	ch := sicmac.Wifi20MHz
	pair := sicmac.Pair{S1: sicmac.FromDB(30), S2: sicmac.FromDB(15)}

	rs, rw, _ := pair.FeasibleRates(ch)
	fmt.Printf("concurrent rates: %.1f / %.1f Mbit/s\n", rs/1e6, rw/1e6)
	fmt.Printf("two-packet gain:  %.2fx\n", pair.Gain(ch, 12000))
	// Output:
	// concurrent rates: 99.7 / 100.6 Mbit/s
	// two-packet gain:  1.49x
}

// Eq. (4): the SIC aggregate equals a single transmitter of power S1+S2.
func ExamplePair_CapacityWithSIC() {
	ch := sicmac.Wifi20MHz
	pair := sicmac.Pair{S1: 15, S2: 3} // linear SNRs

	joint := pair.CapacityWithSIC(ch)
	direct := sicmac.Capacity(ch.BandwidthHz, 15+3)
	fmt.Printf("identical: %v\n", joint == direct)
	// Output:
	// identical: true
}

// SIC-aware scheduling (§6): pair clients by minimum-weight perfect
// matching, with a solo slot for the odd one out.
func ExampleNewSchedule() {
	clients := []sicmac.SchedClient{
		{ID: "a", SNR: sicmac.FromDB(32)},
		{ID: "b", SNR: sicmac.FromDB(16)},
		{ID: "c", SNR: sicmac.FromDB(28)},
		{ID: "d", SNR: sicmac.FromDB(14)},
		{ID: "e", SNR: sicmac.FromDB(22)},
	}
	s, err := sicmac.NewSchedule(clients, sicmac.SchedOptions{
		Channel: sicmac.Wifi20MHz, PacketBits: 12000, PowerControl: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, sl := range s.Slots {
		if sl.Mode == sicmac.ModeSolo {
			fmt.Printf("%s alone\n", clients[sl.A].ID)
			continue
		}
		fmt.Printf("%s + %s (%v)\n", clients[sl.A].ID, clients[sl.B].ID, sl.Mode)
	}
	fmt.Printf("gain %.2fx\n", s.Gain())
	// Output:
	// a + b (sic)
	// c + d (sic)
	// e alone
	// gain 1.37x
}

// The SIC receiver decodes the stronger signal first, cancels it, then
// recovers the weaker one.
func ExampleSICReceiver() {
	ch := sicmac.Wifi20MHz
	rx := sicmac.SICReceiver{Channel: ch}
	strong, weak := sicmac.FromDB(30), sicmac.FromDB(15)

	ok := rx.Decode([]sicmac.Arrival{
		{StationID: 1, SNR: strong, RateBps: sicmac.Capacity(ch.BandwidthHz, strong/(weak+1))},
		{StationID: 2, SNR: weak, RateBps: sicmac.Capacity(ch.BandwidthHz, weak)},
	})
	fmt.Println(ok[0], ok[1])
	// Output:
	// true true
}

// K-signal SIC chains preserve the sum-capacity identity.
func ExampleChainRates() {
	ch := sicmac.Wifi20MHz
	snrs := []float64{15, 3, 1} // linear

	rates, _ := sicmac.ChainRates(ch, snrs)
	var sum float64
	for _, r := range rates {
		sum += r
	}
	fmt.Printf("sum == C(S1+S2+S3): %v\n", sum == sicmac.Capacity(ch.BandwidthHz, 15+3+1))
	// Output:
	// sum == C(S1+S2+S3): true
}

// The ideal partner for a client sits at about twice its SNR in dB.
func ExampleEqualRateStrongSNR() {
	weak := sicmac.FromDB(15)
	ideal := sicmac.EqualRateStrongSNR(weak)
	fmt.Printf("%.1f dB\n", sicmac.DB(ideal))
	// Output:
	// 30.1 dB
}
